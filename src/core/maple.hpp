/**
 * @file
 * The Memory Access Parallel-Load Engine (MAPLE) device model.
 *
 * MAPLE sits on its own NoC tile and is driven purely through MMIO loads and
 * stores (no ISA changes, no core modifications). Mirroring Figure 6 of the
 * paper, the device has three independent pipelines plus a queue controller:
 *
 *  - Configuration pipeline: queue creation/binding, LIMA configuration,
 *    debug and performance-counter reads. Non-blocking.
 *  - Produce pipeline: data-produce and pointer-produce stores. A pointer
 *    produce reserves a queue slot in program order, translates the pointer
 *    in MAPLE's own MMU, issues the memory request with the slot index as
 *    transaction ID, and acknowledges the store -- the DRAM response fills
 *    the slot later, re-ordered by the transaction ID.
 *  - Consume pipeline: loads that pop queue entries; an empty queue parks
 *    the request (no polling) until data arrives.
 *
 * Separate pipelines avoid deadlock: produces blocked on a full queue never
 * impede consumes, which are what eventually free space. An ablation knob
 * (shared_pipeline_hazard) deliberately reintroduces the hazard so the tests
 * can demonstrate the deadlock the design avoids.
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "core/maple_isa.hpp"
#include "core/maple_queue.hpp"
#include "fault/fault.hpp"
#include "mem/cache.hpp"
#include "mem/mmu.hpp"
#include "mem/physical_memory.hpp"
#include "mem/port.hpp"
#include "sim/coro.hpp"
#include "sim/stats.hpp"
#include "soc/address_map.hpp"
#include "trace/trace.hpp"

namespace maple::core {

struct MapleParams {
    std::string name = "maple";
    sim::TileId tile = 0;
    sim::Addr mmio_base = 0;          ///< physical base of the device page
    unsigned scratchpad_bytes = 1024; ///< shared by all queues (Table 2: 1KB)
    unsigned max_queues = 8;
    unsigned produce_buffer = 16;     ///< buffered produce ops (backpressure)
    unsigned lima_cmds = 16;          ///< depth of the LIMA command FIFO
    sim::Cycle pipe_latency = 3;      ///< decode + pipeline traversal
    size_t tlb_entries = 16;
    bool fetch_via_llc = false;       ///< pointer fetches via LLC vs DRAM
    /**
     * Set by the Soc when a real coherence protocol runs (--coherence=msi):
     * dram_port/llc_port are then a CoherentDmaPort (every stream access is
     * ordered by the line's home directory) and speculative prefetches are
     * issued as Prefetch-class protocol requests instead of direct LLC-array
     * inserts (llc_cache is null in that mode).
     */
    bool coherent = false;
    bool shared_pipeline_hazard = false;  ///< ablation: single shared pipeline
};

/** Memory-side connections of a MAPLE instance. */
struct MapleWiring {
    mem::PhysicalMemory *pm = nullptr;
    mem::Port *dram_port = nullptr;  ///< non-coherent direct-to-DRAM path
    mem::Port *llc_port = nullptr;   ///< coherent path through the LLC
    mem::Cache *llc_cache = nullptr; ///< for speculative LLC prefetches
    mem::Port *walk_port = nullptr;  ///< page-table-walker port
};

class Maple : public soc::MmioDevice {
  public:
    Maple(sim::EventQueue &eq, MapleParams params, MapleWiring wiring);

    /// @name soc::MmioDevice
    /// @{
    sim::Task<std::uint64_t> mmioLoad(sim::Addr paddr, unsigned size,
                                      sim::ThreadId thread) override;
    sim::Task<void> mmioStore(sim::Addr paddr, std::uint64_t data, unsigned size,
                              sim::ThreadId thread) override;
    /// @}

    mem::Mmu &mmu() { return mmu_; }
    sim::EventQueue &eq() { return eq_; }

    /**
     * Install the OS driver's fault handler; MAPLE additionally latches the
     * faulting virtual address into the FaultVaddr debug register first, the
     * way the real driver reads it back through the configuration pipeline.
     */
    void setDriverFaultHandler(mem::Mmu::FaultHandler handler);

    MapleQueue &queue(unsigned idx);
    const MapleParams &params() const { return params_; }

    /** Pointer-produces currently between decode and issue (telemetry). */
    unsigned produceInflight() const { return produce_inflight_; }

    /** Status of the last produce/consume-class op on queue @p idx. */
    MapleStatus queueStatus(unsigned idx) const
    {
        return static_cast<MapleStatus>(queue_status_.at(idx));
    }

    /**
     * Architectural error state latched per queue on the first hard fault
     * that hits it. Later hard faults on the same queue only bump the count;
     * the first cause/address stick until StoreOp::DeviceReset on that queue
     * clears the latch. Per-queue so resetting one queue cannot clear the
     * latched fault of another (the driver's escalation check depends on it).
     */
    struct ErrorState {
        bool valid = false;
        fault::FaultClass cause = fault::FaultClass::kCount;
        sim::Addr addr = 0;
        unsigned count = 0;          ///< hard faults since the last reset
        sim::Cycle latched_at = 0;   ///< cycle of the first latched fault
    };

    const ErrorState &errorState(unsigned q) const { return err_.at(q); }
    bool errorLatched(unsigned q) const { return err_.at(q).valid; }
    bool quiesced(unsigned q) const { return quiesced_.at(q) != 0; }

    /**
     * Notification hook invoked on every hard-fault latch — the simulation
     * analogue of the device's error interrupt line. The OS-layer recovery
     * driver uses it to learn of errors it has not yet observed through a
     * poisoned consume.
     */
    using ErrorCallback = std::function<void()>;
    void setErrorCallback(ErrorCallback cb) { error_cb_ = std::move(cb); }

    /** Accepted produce-class ops on queue @p idx (survives DeviceReset). */
    std::uint64_t acceptCount(unsigned idx) const
    {
        return accept_count_.at(idx);
    }

    std::uint64_t counter(Counter c) const
    {
        return counters_[static_cast<size_t>(c)].value();
    }
    sim::StatGroup &stats() { return stats_; }

    /**
     * Snapshot support (src/ckpt). Only valid at a quiesced point: no
     * produce in flight, no op parked at the MMIO boundary, no queued LIMA
     * commands. The error callback and driver fault handler are host-side
     * and re-installed by the attach path after restore.
     */
    void saveState(ckpt::Sink &out) const;
    void loadState(ckpt::Source &in);

  private:
    struct LimaCmd {
        sim::Addr a_base, b_base;
        std::uint32_t start, end;
        LimaControl ctrl;
    };

    /// @name Pipeline front-ends
    /// @{
    sim::Task<void> produceData(unsigned q, std::uint64_t data);
    sim::Task<void> producePtr(unsigned q, sim::Addr vaddr);
    sim::Task<std::uint64_t> consume(unsigned q, bool pair);
    sim::Task<std::uint64_t> consumePoll(unsigned q);
    sim::Task<void> configStore(unsigned q, StoreOp op, std::uint64_t data);
    sim::Task<std::uint64_t> configLoad(unsigned q, LoadOp op, unsigned raw_op);
    /// @}

    /** Reserve + translate + issue fetch for one pointer (produce & LIMA). */
    sim::Task<void> pointerProduceInner(unsigned q, sim::Addr vaddr);

    /** Extension: remote fetch-and-add; old value fills the queue slot. */
    sim::Task<void> produceAmoAdd(unsigned q, sim::Addr vaddr);
    sim::Task<void> amoIntoSlot(unsigned q, unsigned generation, unsigned slot,
                                sim::Addr paddr, std::uint64_t old_value,
                                unsigned bytes);

    /**
     * Wait until queue @p q has a free slot, counting full-stall cycles.
     * Honors the queue's timeout register: returns false when the wait hit
     * the bound (the produce is dropped, status = TimedOut).
     */
    sim::Task<bool> pointerlessEnqueueWait(unsigned q);

    /** Background fill of a reserved slot from memory. */
    sim::Task<void> fetchIntoSlot(unsigned q, unsigned generation, unsigned slot,
                                  sim::Addr paddr, unsigned bytes);

    /** Speculative prefetch of one pointer into the LLC. */
    sim::Task<void> speculativePrefetch(sim::Addr vaddr);

    /** Drains the LIMA command FIFO; at most one instance runs. */
    sim::Task<void> limaWorker();
    sim::Task<void> limaOne(const LimaCmd &cmd);

    /** Occupy a pipeline issue slot (II=1) then traverse it. */
    sim::Task<void> pipeEnter(sim::Cycle &next_free);

    /**
     * Latch a hard fault into queue @p q's architectural error registers
     * (first cause/addr win, count always bumps) and fire the error callback.
     */
    void latchError(unsigned q, fault::FaultClass cause, sim::Addr addr);

    /** StoreOp::DeviceReset backend: see the ISA comment for semantics. */
    void deviceReset(unsigned q);

    /** Injected delayed-MMIO-response fault (no-op when faults are off). */
    sim::Task<void> mmioDelay();

    /// @name Shared-pipeline ablation: a parked op occupies the pipe head,
    /// blocking every op behind it (the head-of-line hazard the real design
    /// avoids with separate pipelines).
    /// @{
    sim::Task<void> acquirePipeHead();
    void releasePipeHead();
    /// @}

    void applyQueueConfig(std::uint64_t payload);
    void bumpCounter(Counter c, std::uint64_t n = 1)
    {
        counters_[static_cast<size_t>(c)].inc(n);
    }

    /**
     * Active tracer or nullptr; lazily creates the per-pipeline lane groups
     * on first use so construction order doesn't matter.
     */
    trace::TraceManager *tracer();

    sim::EventQueue &eq_;
    MapleParams params_;
    MapleWiring w_;
    mem::Mmu mmu_;
    sim::StatGroup stats_;

    std::vector<MapleQueue> queues_;
    std::vector<unsigned> queue_generation_;
    // Bumped only by DeviceReset: parked produce/consume waits re-check it
    // and unwind with MapleStatus::Aborted. Deliberately separate from
    // queue_generation_ (which a plain reconfigure also bumps): a consume
    // parked against the power-on default config must survive the
    // application's INIT, exactly as it did before recovery existed.
    std::vector<unsigned> queue_abort_epoch_;

    // Non-blocking / timed-op state (LoadOp::QueueStatus semantics): the
    // outcome of the last produce/consume-class op per queue, plus the
    // latched per-queue wait bound (0 = block forever). The direction-split
    // copies back LoadOp::ProduceStatus/ConsumeStatus so a producer and a
    // consumer core sharing a queue can't clobber each other's status.
    std::vector<std::uint8_t> queue_status_;
    std::vector<std::uint8_t> produce_status_;
    std::vector<std::uint8_t> consume_status_;
    std::vector<sim::Cycle> queue_timeout_;

    // Architectural error reporting + recovery control (see maple_isa.hpp).
    // Both are per queue: a recovery quiesces/resets only its own queue, so
    // concurrent recoveries on different queues cannot void each other's
    // quiesce window or clear each other's latched fault.
    std::vector<ErrorState> err_;
    std::vector<std::uint8_t> quiesced_;
    std::vector<std::uint64_t> accept_count_;
    ErrorCallback error_cb_;

    // Pipeline issue chains (next-free-cycle reservations).
    sim::Cycle produce_free_ = 0;
    sim::Cycle consume_free_ = 0;
    sim::Cycle config_free_ = 0;

    // Injected-MMIO-delay ordering point: no op may enter its pipeline
    // before this cycle. Keeps the device boundary FIFO so a delayed op
    // holds back later arrivals instead of letting them overtake it.
    // mmio_pending_ counts ops parked at the boundary so a same-cycle
    // arrival queues behind their wake events instead of barging past.
    sim::Cycle mmio_release_ = 0;
    unsigned mmio_pending_ = 0;

    // Produce buffer backpressure. The buffer (and its global count) is
    // shared by all queues; the per-queue counts feed ErrStatus so a
    // recovery drains only its own queue's in-flight produces instead of
    // waiting on traffic to queues it did not quiesce.
    unsigned produce_inflight_ = 0;
    std::vector<unsigned> produce_inflight_q_;
    sim::Signal produce_buffer_wait_;

    // Shared-pipeline ablation state.
    bool pipe_head_held_ = false;
    sim::Signal pipe_head_wait_;

    // AMO extension state: one addend register per queue, plus a commit
    // sequencer so RMWs linearize in program order even when translations
    // complete out of order.
    std::vector<std::uint64_t> amo_addend_;
    std::vector<std::uint64_t> amo_seq_alloc_;
    std::vector<std::uint64_t> amo_seq_commit_;
    sim::Signal amo_commit_wait_;

    // LIMA state.
    sim::Addr lima_a_base_ = 0;
    sim::Addr lima_b_base_ = 0;
    std::uint64_t lima_range_ = 0;
    std::deque<LimaCmd> lima_cmds_;
    sim::Signal lima_space_wait_;
    bool lima_running_ = false;

    sim::Addr last_fault_vaddr_ = 0;
    std::array<sim::Counter, static_cast<size_t>(Counter::kCount)> counters_;

    // Tracing lane groups, one per pipeline (Figure 6); kNone until a tracer
    // is seen.
    trace::TraceManager::LaneGroupId tr_produce_ = trace::TraceManager::kNone;
    trace::TraceManager::LaneGroupId tr_consume_ = trace::TraceManager::kNone;
    trace::TraceManager::LaneGroupId tr_config_ = trace::TraceManager::kNone;
};

}  // namespace maple::core
