#include "core/area_model.hpp"

namespace maple::core {

namespace {

// 12nm-class area coefficients (um^2). SRAM bit-cell and flop areas are in
// the range published for comparable FinFET nodes; the logic constants are
// calibrated so the paper's configuration lands at the reported 1.1% of an
// Ariane core. Scaling with parameters is structural.
constexpr double kSramBit = 0.045;       // 6T SRAM bit incl. periphery share
constexpr double kCamBit = 0.22;         // fully-associative TLB CAM bit
constexpr double kFlopBit = 0.35;        // pipeline/buffer register bit
constexpr double kPipelineLogic = 850.0; // decode + control per pipeline
constexpr double kQueueCtrl = 260.0;     // head/tail/valid control per queue
constexpr double kLimaLogic = 1900.0;    // address generator + iterator
constexpr double kPtwLogic = 1200.0;      // page-table walker FSM
constexpr double kNocCodec = 1500.0;     // NoC encoder/decoder pair

// Ariane, 6-stage in-order RV64, core-only area scaled to a 12nm-class node
// (Zaruba & Benini report ~210 kGE core logic; at ~0.12 um^2/GE this is
// ~25,000 um^2... the published 22nm macro scaled by node factor gives the
// same order). Calibrated reference:
constexpr double kArianeCore = 1.05e6;   // um^2 incl. FPU, MMU, L1 interfaces

}  // namespace

AreaBreakdown
mapleArea(const AreaParams &p)
{
    AreaBreakdown b;
    auto add = [&b](const std::string &name, double um2) {
        b.items.push_back({name, um2});
        b.total_um2 += um2;
    };

    add("scratchpad SRAM", p.scratchpad_bytes * 8 * kSramBit);
    // valid bits + head/tail pointers + per-queue control
    add("queue controller", p.queues * (kQueueCtrl + 2 * 16 * kFlopBit));
    add("TLB (fully assoc.)", p.tlb_entries * (64 * kCamBit + 64 * kFlopBit));
    add("page-table walker", kPtwLogic);
    add("produce pipeline", kPipelineLogic +
            p.produce_buffer * 72 * kFlopBit);
    add("consume pipeline", kPipelineLogic);
    add("config pipeline", kPipelineLogic * 0.6);
    add("LIMA unit", kLimaLogic + p.lima_cmds * 160 * kFlopBit);
    add("NoC encoders/decoders", kNocCodec);

    b.ariane_um2 = kArianeCore;
    return b;
}

}  // namespace maple::core
