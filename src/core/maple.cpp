#include "core/maple.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "mem/resil.hpp"
#include "sim/error.hpp"
#include "sim/log.hpp"

namespace maple::core {

Maple::Maple(sim::EventQueue &eq, MapleParams params, MapleWiring wiring)
    : eq_(eq), params_(std::move(params)), w_(wiring),
      mmu_(eq, *wiring.pm, *wiring.walk_port, params_.tlb_entries,
           params_.tile),
      stats_(params_.name)
{
    MAPLE_ASSERT(w_.pm && w_.dram_port && w_.walk_port, "MAPLE wiring incomplete");
    MAPLE_ASSERT(params_.max_queues >= 1 && params_.max_queues <= kMaxQueuesPerPage,
                 "queue count must fit the MMIO encoding");
    queues_.resize(params_.max_queues);
    queue_generation_.assign(params_.max_queues, 0);
    queue_abort_epoch_.assign(params_.max_queues, 0);
    queue_status_.assign(params_.max_queues,
                         static_cast<std::uint8_t>(MapleStatus::Ok));
    produce_status_.assign(params_.max_queues,
                           static_cast<std::uint8_t>(MapleStatus::Ok));
    consume_status_.assign(params_.max_queues,
                           static_cast<std::uint8_t>(MapleStatus::Ok));
    queue_timeout_.assign(params_.max_queues, 0);
    accept_count_.assign(params_.max_queues, 0);
    err_.assign(params_.max_queues, ErrorState{});
    quiesced_.assign(params_.max_queues, 0);
    produce_inflight_q_.assign(params_.max_queues, 0);
    amo_addend_.assign(params_.max_queues, 0);
    amo_seq_alloc_.assign(params_.max_queues, 0);
    amo_seq_commit_.assign(params_.max_queues, 0);
    // Power-on default: all queues share the scratchpad evenly, 4B entries.
    applyQueueConfig(packQueueConfig(
        params_.max_queues, params_.scratchpad_bytes / (params_.max_queues * 4), 4));
}

trace::TraceManager *
Maple::tracer()
{
    trace::TraceManager *t = trace::active(eq_);
    if (t && tr_produce_ == trace::TraceManager::kNone) {
        tr_produce_ = t->laneGroup(params_.name + ".produce");
        tr_consume_ = t->laneGroup(params_.name + ".consume");
        tr_config_ = t->laneGroup(params_.name + ".config");
    }
    return t;
}

MapleQueue &
Maple::queue(unsigned idx)
{
    MAPLE_ASSERT(idx < queues_.size(), "queue index out of range");
    return queues_[idx];
}

void
Maple::setDriverFaultHandler(mem::Mmu::FaultHandler handler)
{
    mmu_.setFaultHandler(
        [this, handler = std::move(handler)](sim::Addr vaddr, bool write) -> sim::Task<bool> {
            last_fault_vaddr_ = vaddr;
            bumpCounter(Counter::PageFaults);
            bool ok = co_await handler(vaddr, write);
            co_return ok;
        });
}

sim::Task<void>
Maple::pipeEnter(sim::Cycle &next_free)
{
    sim::Cycle start = std::max(eq_.now(), next_free);
    next_free = start + 1;  // initiation interval 1
    co_await sim::delay(eq_, (start + params_.pipe_latency) - eq_.now());
}

sim::Task<void>
Maple::acquirePipeHead()
{
    fault::ParkGuard park(eq_, "pipe_head", params_.name);
    while (pipe_head_held_) {
        sim::Signal wait = pipe_head_wait_;
        co_await wait;
    }
    pipe_head_held_ = true;
}

void
Maple::releasePipeHead()
{
    pipe_head_held_ = false;
    sim::Signal wake = std::exchange(pipe_head_wait_, sim::Signal{});
    wake.set(sim::Unit{});
}

void
Maple::applyQueueConfig(std::uint64_t payload)
{
    QueueConfigPayload cfg = unpackQueueConfig(payload);
    if (cfg.count == 0 || cfg.count > queues_.size()) {
        MAPLE_WARN("%s: bad queue count %u", params_.name.c_str(), cfg.count);
        return;
    }
    std::uint64_t bytes =
        std::uint64_t(cfg.count) * cfg.entries * cfg.entry_bytes;
    if (bytes > params_.scratchpad_bytes) {
        MAPLE_WARN("%s: queue config (%u x %u x %uB) exceeds the %uB scratchpad",
                   params_.name.c_str(), cfg.count, cfg.entries, cfg.entry_bytes,
                   params_.scratchpad_bytes);
        return;
    }
    for (unsigned i = 0; i < queues_.size(); ++i) {
        ++queue_generation_[i];
        queue_status_[i] = static_cast<std::uint8_t>(MapleStatus::Ok);
        produce_status_[i] = static_cast<std::uint8_t>(MapleStatus::Ok);
        consume_status_[i] = static_cast<std::uint8_t>(MapleStatus::Ok);
        queue_timeout_[i] = 0;
        accept_count_[i] = 0;
        if (i < cfg.count)
            queues_[i].configure(cfg.entries, cfg.entry_bytes);
        else
            queues_[i].reset();
    }
}

void
Maple::latchError(unsigned q, fault::FaultClass cause, sim::Addr addr)
{
    bumpCounter(Counter::HardFaults);
    ErrorState &err = err_[q];
    ++err.count;
    if (!err.valid) {
        err.valid = true;
        err.cause = cause;
        err.addr = addr;
        err.latched_at = eq_.now();
        MAPLE_WARN("%s: hard fault latched on queue %u: %s at 0x%llx (cycle %llu)",
                   params_.name.c_str(), q, fault::faultClassName(cause),
                   (unsigned long long)addr, (unsigned long long)eq_.now());
    }
    if (error_cb_)
        error_cb_();
}

void
Maple::deviceReset(unsigned q)
{
    // Bump the generation first: in-flight fills for the dropped contents
    // are fenced off, and the signal wakes from flushContents() unwind any
    // parked produce/consume on this queue with status Aborted.
    ++queue_generation_[q];
    ++queue_abort_epoch_[q];
    queues_[q].flushContents();
    mmu_.flush();
    err_[q] = {};
    // Overwrite the queue's status registers too: a pre-reset Ok left
    // behind by the last op must not be readable after the reset, or the
    // driver would trust it, retire its journal front, and later deliver
    // the replayed duplicate. Aborted tells the driver to retry/park.
    queue_status_[q] = produce_status_[q] = consume_status_[q] =
        static_cast<std::uint8_t>(MapleStatus::Aborted);
}

sim::Task<void>
Maple::mmioDelay()
{
    // Injected delayed MMIO response: the op sits at the device boundary a
    // few extra cycles before its pipeline sees it. The boundary is an
    // ordering point -- a delayed op holds back every later arrival, so
    // posted produce stores never overtake each other and queue FIFO order
    // is preserved (the fault is latency, never a correctness bug).
    if (fault::FaultInjector *f = fault::active(eq_)) {
        sim::Cycle d = f->inject(fault::FaultClass::MmioDelay);
        if (d)
            f->chargeCycles(fault::FaultClass::MmioDelay, d);
        sim::Cycle release = std::max(eq_.now(), mmio_release_) + d;
        if (release > eq_.now() || mmio_pending_ > 0) {
            // Suspend even when release == now: earlier ops may still be
            // parked here with wake events pending later this same cycle,
            // and sim::delay(0) would never suspend, letting this op barge
            // past them. A zero-delta resume appends to the current wheel
            // bucket, so FIFO order across the boundary is preserved.
            struct BoundaryAwait {
                sim::EventQueue &eq;
                sim::Cycle when;
                bool await_ready() const noexcept { return false; }
                void
                await_suspend(std::coroutine_handle<> h) const
                {
                    eq.scheduleResumeIn(when - eq.now(), h);
                }
                void await_resume() const noexcept {}
            };
            mmio_release_ = release;
            ++mmio_pending_;
            co_await BoundaryAwait{eq_, release};
            --mmio_pending_;
        }
    }
}

sim::Task<std::uint64_t>
Maple::mmioLoad(sim::Addr paddr, unsigned size, sim::ThreadId)
{
    (void)size;
    unsigned q = decodeQueue(paddr);
    unsigned raw_op = decodeOp(paddr);
    MAPLE_CHECK(q < queues_.size(), sim::MmioDecodeError,
                "%s: MMIO load 0x%llx targets nonexistent queue %u (device has %u)",
                params_.name.c_str(), (unsigned long long)paddr, q,
                (unsigned)queues_.size());
    co_await mmioDelay();

    auto op = static_cast<LoadOp>(raw_op);
    if (op == LoadOp::Consume)
        co_return co_await consume(q, /*pair=*/false);
    if (op == LoadOp::ConsumePair)
        co_return co_await consume(q, /*pair=*/true);
    if (op == LoadOp::ConsumePoll)
        co_return co_await consumePoll(q);
    co_return co_await configLoad(q, op, raw_op);
}

sim::Task<void>
Maple::mmioStore(sim::Addr paddr, std::uint64_t data, unsigned size, sim::ThreadId)
{
    (void)size;
    unsigned q = decodeQueue(paddr);
    unsigned raw_op = decodeOp(paddr);
    MAPLE_CHECK(q < queues_.size(), sim::MmioDecodeError,
                "%s: MMIO store 0x%llx targets nonexistent queue %u (device has %u)",
                params_.name.c_str(), (unsigned long long)paddr, q,
                (unsigned)queues_.size());
    co_await mmioDelay();

    switch (static_cast<StoreOp>(raw_op)) {
      case StoreOp::ProduceData:
        co_return co_await produceData(q, data);
      case StoreOp::ProducePtr:
        co_return co_await producePtr(q, data);
      case StoreOp::ProduceAmoAdd:
        co_return co_await produceAmoAdd(q, data);
      default:
        co_return co_await configStore(q, static_cast<StoreOp>(raw_op), data);
    }
}

// ---------------------------------------------------------------------------
// Produce pipeline
// ---------------------------------------------------------------------------

sim::Task<void>
Maple::produceData(unsigned q, std::uint64_t data)
{
    trace::LaneSpan span(tracer(), tr_produce_, "produce_data",
                         trace::Category::Maple);
    co_await pipeEnter(produce_free_);
    if (quiesced_[q]) {
        produce_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Quiesced);
        co_return;
    }
    bumpCounter(Counter::ProducedData);
    if (params_.shared_pipeline_hazard)
        co_await acquirePipeHead();
    if (co_await pointerlessEnqueueWait(q)) {
        MapleQueue &queue = queues_[q];
        ++accept_count_[q];
        unsigned slot = queue.reserveSlot();
        queue.fillSlot(slot, data);
    }
    if (params_.shared_pipeline_hazard)
        releasePipeHead();
}

sim::Task<void>
Maple::producePtr(unsigned q, sim::Addr vaddr)
{
    trace::LaneSpan span(tracer(), tr_produce_, "produce_ptr",
                         trace::Category::Maple);
    co_await pipeEnter(produce_free_);
    if (quiesced_[q]) {
        produce_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Quiesced);
        co_return;
    }
    bumpCounter(Counter::ProducedPtrs);

    // Produce buffer: bounded number of produces between decode and issue.
    sim::Cycle buf_wait_start = eq_.now();
    {
        fault::ParkGuard park(eq_, "produce_buffer", params_.name, q);
        while (produce_inflight_ >= params_.produce_buffer) {
            sim::Signal wait = produce_buffer_wait_;
            co_await wait;
        }
    }
    if (eq_.now() != buf_wait_start) {
        if (auto *t = tracer()) {
            t->attributeStall(trace::StallCause::ProduceBuffer,
                              eq_.now() - buf_wait_start);
        }
    }
    ++produce_inflight_;
    ++produce_inflight_q_[q];
    if (params_.shared_pipeline_hazard)
        co_await acquirePipeHead();
    co_await pointerProduceInner(q, vaddr);
    if (params_.shared_pipeline_hazard)
        releasePipeHead();
    --produce_inflight_;
    --produce_inflight_q_[q];
    sim::Signal wake = std::exchange(produce_buffer_wait_, sim::Signal{});
    wake.set(sim::Unit{});
}

sim::Task<void>
Maple::pointerProduceInner(unsigned q, sim::Addr vaddr)
{
    if (!co_await pointerlessEnqueueWait(q))
        co_return;  // timed out / aborted: the produce is dropped
    MapleQueue &queue = queues_[q];
    ++accept_count_[q];
    unsigned slot = queue.reserveSlot();
    unsigned generation = queue_generation_[q];

    // Injected TLB-miss storm: shoot the translation down first so this
    // lookup pays a full organic re-walk through the walk port.
    bool storm = false;
    if (fault::FaultInjector *f = fault::active(eq_)) {
        if (f->inject(fault::FaultClass::TlbStorm)) {
            mmu_.invalidate(vaddr);
            storm = true;
        }
    }
    // Translate in MAPLE's own MMU (may walk page tables / fault to driver).
    // A TLB hit completes in zero cycles, so any elapsed time is walk/fault.
    sim::Cycle xlate_start = eq_.now();
    mem::Translation tr = co_await mmu_.translate(vaddr, /*write=*/false);
    if (eq_.now() != xlate_start) {
        if (storm) {
            if (fault::FaultInjector *f = fault::active(eq_))
                f->chargeCycles(fault::FaultClass::TlbStorm,
                                eq_.now() - xlate_start);
        } else if (auto *t = tracer()) {
            t->attributeStall(trace::StallCause::TlbMiss,
                              eq_.now() - xlate_start);
        }
    }
    if (tr.fault) {
        MAPLE_WARN("%s: unresolved fault for va 0x%llx; poisoning slot",
                   params_.name.c_str(), (unsigned long long)vaddr);
        if (generation == queue_generation_[q])
            queue.fillSlot(slot, 0);
        co_return;
    }
    // Injected hard device-TLB fault: the translation the lookup produced is
    // garbage, so fetching through it would read the wrong line. Latch the
    // error, invalidate the whole (untrusted) TLB, and poison the slot --
    // FIFO order is preserved, the consumer sees MapleStatus::Poisoned.
    if (fault::FaultInjector *f = fault::active(eq_)) {
        if (f->inject(fault::FaultClass::HardTlb,
                      mem::RequesterClass::MapleProduce)) {
            latchError(q, fault::FaultClass::HardTlb, vaddr);
            mmu_.flush();
            if (generation == queue_generation_[q])
                queue.fillSlotPoisoned(slot, 0);
            co_return;
        }
    }
    // Issue the memory request; the slot index is the transaction ID. The
    // produce is acknowledged now (the Access thread's store retires), and
    // the response fills the slot asynchronously.
    sim::spawnDetached(eq_, fetchIntoSlot(q, generation, slot, tr.paddr,
                                          queue.entryBytes()));
}

sim::Task<bool>
Maple::pointerlessEnqueueWait(unsigned q)
{
    MapleQueue &queue = queues_[q];
    MAPLE_CHECK(queue.configured(), sim::QueueMisuseError,
                "%s: produce to unconfigured queue %u", params_.name.c_str(), q);
    sim::Cycle wait_start = eq_.now();
    const unsigned abort_epoch = queue_abort_epoch_[q];
    bool timed_out = false;
    {
        fault::ParkGuard park(eq_, "produce_full", params_.name, q);
        while (queue.full() && queue_abort_epoch_[q] == abort_epoch) {
            // Re-read the bound every wakeup: the recovery driver re-arms
            // QueueTimeout (a reconfigure zeroes it) while ops are parked
            // here, and the new bound must take effect on them — a produce
            // parked forever on a poison-wedged queue would otherwise hold
            // the in-flight count up and deadlock the recovery drain.
            const sim::Cycle timeout = queue_timeout_[q];
            if (timeout == 0) {
                sim::Signal wait = queue.spaceSignal();
                co_await wait;
            } else {
                // Timed wait: the hardware timeout counter ticks every
                // cycle until space frees or the bound is hit.
                if (eq_.now() >= wait_start + timeout) {
                    timed_out = true;
                    break;
                }
                co_await sim::delay(eq_, 1);
            }
        }
    }
    if (eq_.now() != wait_start) {
        bumpCounter(Counter::FullStallCycles, eq_.now() - wait_start);
        if (auto *t = tracer()) {
            t->attributeStall(trace::StallCause::QueueFull,
                              eq_.now() - wait_start);
        }
    }
    if (queue_abort_epoch_[q] != abort_epoch) {
        // DeviceReset hit the queue while this produce was parked: unwind
        // without touching the rebuilt queue.
        produce_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Aborted);
        co_return false;
    }
    if (timed_out) {
        produce_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::TimedOut);
        bumpCounter(Counter::TimedOutOps);
        co_return false;
    }
    produce_status_[q] = queue_status_[q] =
        static_cast<std::uint8_t>(MapleStatus::Ok);
    co_return true;
}

sim::Task<void>
Maple::fetchIntoSlot(unsigned q, unsigned generation, unsigned slot,
                     sim::Addr paddr, unsigned bytes)
{
    bumpCounter(Counter::MemRequests);
    mem::Port *port = params_.fetch_via_llc && w_.llc_port ? w_.llc_port
                                                            : w_.dram_port;
    // Injected hard scratchpad fault: decided per fill opportunity and
    // carried on the request as a fault tag, so the poison travels with the
    // response the way a real ECC error would.
    mem::RequestMeta meta;
    if (fault::FaultInjector *f = fault::active(eq_)) {
        if (f->inject(fault::FaultClass::HardSpad,
                      mem::RequesterClass::MapleProduce))
            meta.fault_tags |= fault::faultClassBit(fault::FaultClass::HardSpad);
    }
    sim::Cycle fetch_start = eq_.now();
    co_await port->request(mem::MemRequest::make(
        eq_, mem::RequesterClass::MapleProduce, params_.tile, paddr, bytes,
        mem::AccessKind::Read, &meta));
    if (auto *t = tracer()) {
        t->attributeStall(trace::StallCause::Dram, eq_.now() - fetch_start);
    }
    if (generation != queue_generation_[q])
        co_return;  // queue was closed/reconfigured while the fetch flew
    // One poison taxonomy for both origins: the injected device fault above
    // and memory-origin poison (an uncorrectable ECC error anywhere below,
    // reported by the hierarchy as meta.poison) land in the same latched
    // error + poisoned-slot path, so MapleStatus::Poisoned and the OS
    // recovery driver cover both with one counter set.
    const bool device_poison =
        meta.fault_tags & fault::faultClassBit(fault::FaultClass::HardSpad);
    if (device_poison || meta.poison) {
        latchError(q,
                   device_poison
                       ? fault::FaultClass::HardSpad
                       : mem::poisonCause(&meta,
                                          fault::FaultClass::BitFlipDram),
                   paddr);
        queues_[q].fillSlotPoisoned(slot, 0);
        co_return;
    }
    std::uint64_t value = 0;
    w_.pm->read(paddr, &value, bytes);
    queues_[q].fillSlot(slot, value);
}

sim::Task<void>
Maple::produceAmoAdd(unsigned q, sim::Addr vaddr)
{
    trace::LaneSpan span(tracer(), tr_produce_, "produce_amo",
                         trace::Category::Maple);
    co_await pipeEnter(produce_free_);
    if (quiesced_[q]) {
        produce_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Quiesced);
        co_return;
    }
    bumpCounter(Counter::ProducedPtrs);

    sim::Cycle buf_wait_start = eq_.now();
    {
        fault::ParkGuard park(eq_, "produce_buffer", params_.name, q);
        while (produce_inflight_ >= params_.produce_buffer) {
            sim::Signal wait = produce_buffer_wait_;
            co_await wait;
        }
    }
    if (eq_.now() != buf_wait_start) {
        if (auto *t = tracer()) {
            t->attributeStall(trace::StallCause::ProduceBuffer,
                              eq_.now() - buf_wait_start);
        }
    }
    ++produce_inflight_;
    ++produce_inflight_q_[q];
    if (!co_await pointerlessEnqueueWait(q)) {
        // Timed out waiting for space: drop the op, but release the buffer
        // slot so later produces are not starved by a dead one.
        --produce_inflight_;
        --produce_inflight_q_[q];
        sim::Signal timeout_wake = std::exchange(produce_buffer_wait_, sim::Signal{});
        timeout_wake.set(sim::Unit{});
        co_return;
    }
    MapleQueue &queue = queues_[q];
    ++accept_count_[q];
    unsigned slot = queue.reserveSlot();
    unsigned generation = queue_generation_[q];
    // Take a commit ticket at reservation time: translations can complete
    // out of order (page walks to the same table line merge and resume in
    // arbitrary order), but RMWs must linearize in program order or the
    // old-value FIFO contract breaks.
    std::uint64_t ticket = amo_seq_alloc_[q]++;
    bool storm = false;
    if (fault::FaultInjector *f = fault::active(eq_)) {
        if (f->inject(fault::FaultClass::TlbStorm)) {
            mmu_.invalidate(vaddr);
            storm = true;
        }
    }
    sim::Cycle xlate_start = eq_.now();
    mem::Translation tr = co_await mmu_.translate(vaddr, /*write=*/true);
    if (eq_.now() != xlate_start) {
        if (storm) {
            if (fault::FaultInjector *f = fault::active(eq_))
                f->chargeCycles(fault::FaultClass::TlbStorm,
                                eq_.now() - xlate_start);
        } else if (auto *t = tracer()) {
            t->attributeStall(trace::StallCause::TlbMiss,
                              eq_.now() - xlate_start);
        }
    }
    {
        fault::ParkGuard park(eq_, "amo_commit", params_.name, q);
        while (amo_seq_commit_[q] != ticket) {
            sim::Signal wait = amo_commit_wait_;
            co_await wait;
        }
    }
    if (tr.fault) {
        MAPLE_WARN("%s: unresolved AMO fault at va 0x%llx; poisoning slot",
                   params_.name.c_str(), (unsigned long long)vaddr);
        if (generation == queue_generation_[q])
            queue.fillSlot(slot, 0);
    } else {
        unsigned bytes = queue.entryBytes();
        std::uint64_t old = 0;
        w_.pm->read(tr.paddr, &old, bytes);
        std::uint64_t updated = old + amo_addend_[q];
        w_.pm->write(tr.paddr, &updated, bytes);
        sim::spawnDetached(eq_, amoIntoSlot(q, generation, slot, tr.paddr, old,
                                            bytes));
    }
    ++amo_seq_commit_[q];
    sim::Signal commit_wake = std::exchange(amo_commit_wait_, sim::Signal{});
    commit_wake.set(sim::Unit{});
    --produce_inflight_;
    --produce_inflight_q_[q];
    sim::Signal wake = std::exchange(produce_buffer_wait_, sim::Signal{});
    wake.set(sim::Unit{});
}

sim::Task<void>
Maple::amoIntoSlot(unsigned q, unsigned generation, unsigned slot,
                   sim::Addr paddr, std::uint64_t old_value, unsigned bytes)
{
    bumpCounter(Counter::MemRequests);
    // Atomics are coherent: charge an LLC round trip for the RMW.
    mem::Port *port = w_.llc_port ? w_.llc_port : w_.dram_port;
    sim::Cycle rmw_start = eq_.now();
    co_await port->request(mem::MemRequest::make(
        eq_, mem::RequesterClass::MapleProduce, params_.tile, paddr, bytes,
        mem::AccessKind::Write));
    if (auto *t = tracer()) {
        t->attributeStall(trace::StallCause::Dram, eq_.now() - rmw_start);
    }
    if (generation != queue_generation_[q])
        co_return;
    queues_[q].fillSlot(slot, old_value);
}

// ---------------------------------------------------------------------------
// Consume pipeline
// ---------------------------------------------------------------------------

sim::Task<std::uint64_t>
Maple::consume(unsigned q, bool pair)
{
    trace::LaneSpan span(tracer(), tr_consume_,
                         pair ? "consume_pair" : "consume",
                         trace::Category::Maple);
    // Ablation: with a single shared pipeline, consumes serialize behind
    // produces -- including produces parked on a full queue (deadlock).
    co_await pipeEnter(params_.shared_pipeline_hazard ? produce_free_
                                                      : consume_free_);
    if (quiesced_[q]) {
        consume_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Quiesced);
        co_return 0;
    }
    if (params_.shared_pipeline_hazard)
        co_await acquirePipeHead();
    MapleQueue &queue = queues_[q];
    MAPLE_CHECK(queue.configured(), sim::QueueMisuseError,
                "%s: consume from unconfigured queue %u", params_.name.c_str(),
                q);
    if (pair) {
        MAPLE_CHECK(queue.entryBytes() == 4, sim::QueueMisuseError,
                    "%s: ConsumePair needs 4-byte queue entries (queue %u has "
                    "%uB)",
                    params_.name.c_str(), q, queue.entryBytes());
    }

    const unsigned needed = pair ? 2 : 1;
    sim::Cycle wait_start = eq_.now();
    const unsigned abort_epoch = queue_abort_epoch_[q];
    bool timed_out = false;
    {
        fault::ParkGuard park(eq_, "consume_empty", params_.name, q);
        while (!queue.headValid(needed) &&
               queue_abort_epoch_[q] == abort_epoch) {
            // Re-read the bound every wakeup (see pointerlessEnqueueWait):
            // a QueueTimeout store must take effect on parked consumes too.
            const sim::Cycle timeout = queue_timeout_[q];
            if (timeout == 0) {
                sim::Signal wait = queue.dataSignal();
                co_await wait;
            } else {
                if (eq_.now() >= wait_start + timeout) {
                    timed_out = true;
                    break;
                }
                co_await sim::delay(eq_, 1);
            }
        }
    }
    if (eq_.now() != wait_start) {
        bumpCounter(Counter::EmptyStallCycles, eq_.now() - wait_start);
        if (auto *t = tracer()) {
            t->attributeStall(trace::StallCause::QueueEmpty,
                              eq_.now() - wait_start);
        }
    }
    if (queue_abort_epoch_[q] != abort_epoch) {
        // DeviceReset unwound this parked consume: the entry it was waiting
        // for was dropped with the queue contents.
        consume_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Aborted);
        if (params_.shared_pipeline_hazard)
            releasePipeHead();
        co_return 0;
    }
    if (timed_out) {
        consume_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::TimedOut);
        bumpCounter(Counter::TimedOutOps);
        if (params_.shared_pipeline_hazard)
            releasePipeHead();
        co_return 0;  // software reads QueueStatus to distinguish from data
    }
    if (queue.headPoisoned(needed)) {
        // Surface poison, not data -- and leave the entries at the head, so
        // the queue wedges until a DeviceReset. Popping here would free a
        // slot and let a parked produce slip in, pushing the accepted-but-
        // undelivered window past the queue capacity; the driver's recovery
        // replay depends on that window always fitting the reset queue.
        consume_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Poisoned);
        bumpCounter(Counter::PoisonedResponses);
        if (params_.shared_pipeline_hazard)
            releasePipeHead();
        co_return 0;
    }

    std::uint64_t value = queue.pop();
    if (pair)
        value |= queue.pop() << 32;
    bumpCounter(Counter::Consumed, needed);
    consume_status_[q] = queue_status_[q] =
        static_cast<std::uint8_t>(MapleStatus::Ok);
    stats_.average("occupancy_at_consume").sample(queue.occupancy());
    stats_.histogram("consume_occupancy").sample(queue.occupancy());
    if (params_.shared_pipeline_hazard)
        releasePipeHead();
    co_return value;
}

sim::Task<std::uint64_t>
Maple::consumePoll(unsigned q)
{
    trace::LaneSpan span(tracer(), tr_consume_, "consume_poll",
                         trace::Category::Maple);
    co_await pipeEnter(params_.shared_pipeline_hazard ? produce_free_
                                                      : consume_free_);
    if (quiesced_[q]) {
        consume_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Quiesced);
        co_return 0;
    }
    MapleQueue &queue = queues_[q];
    // Polling an unconfigured queue is not misuse: report Empty so software
    // spin loops degrade gracefully instead of crashing the device model.
    if (!queue.configured() || !queue.headValid(1)) {
        consume_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Empty);
        co_return 0;
    }
    if (queue.headPoisoned(1)) {
        // Same wedge-until-reset contract as the blocking consume above.
        consume_status_[q] = queue_status_[q] =
            static_cast<std::uint8_t>(MapleStatus::Poisoned);
        bumpCounter(Counter::PoisonedResponses);
        co_return 0;
    }
    std::uint64_t value = queue.pop();
    bumpCounter(Counter::Consumed);
    consume_status_[q] = queue_status_[q] =
        static_cast<std::uint8_t>(MapleStatus::Ok);
    stats_.average("occupancy_at_consume").sample(queue.occupancy());
    stats_.histogram("consume_occupancy").sample(queue.occupancy());
    co_return value;
}

// ---------------------------------------------------------------------------
// Configuration pipeline
// ---------------------------------------------------------------------------

sim::Task<std::uint64_t>
Maple::configLoad(unsigned q, LoadOp op, unsigned raw_op)
{
    trace::LaneSpan span(tracer(), tr_config_, "config_load",
                         trace::Category::Maple);
    co_await pipeEnter(config_free_);
    if (raw_op >= static_cast<unsigned>(LoadOp::CounterBase)) {
        unsigned idx = raw_op - static_cast<unsigned>(LoadOp::CounterBase);
        if (idx < counters_.size())
            co_return counters_[idx].value();
        co_return 0;
    }
    switch (op) {
      case LoadOp::Open:
        co_return queues_[q].tryOpen() ? 1 : 0;
      case LoadOp::Occupancy:
        co_return queues_[q].occupancy();
      case LoadOp::FaultVaddr:
        co_return last_fault_vaddr_;
      case LoadOp::QueueConfig:
        co_return (std::uint64_t(queues_[q].capacity()) << 8) |
            queues_[q].entryBytes();
      case LoadOp::QueueStatus:
        co_return queue_status_[q];
      case LoadOp::ErrStatus:
        co_return (err_[q].valid ? 1u : 0u) | (quiesced_[q] ? 2u : 0u) |
            (std::uint64_t(err_[q].count & 0xff) << 8) |
            (std::uint64_t(produce_inflight_q_[q] & 0xffff) << 16);
      case LoadOp::ErrCause:
        co_return static_cast<std::uint64_t>(err_[q].cause);
      case LoadOp::ErrAddr:
        co_return err_[q].addr;
      case LoadOp::AcceptCount:
        co_return accept_count_[q];
      case LoadOp::ProduceStatus:
        co_return produce_status_[q];
      case LoadOp::ConsumeStatus:
        co_return consume_status_[q];
      default:
        MAPLE_WARN("%s: unknown load op %u", params_.name.c_str(), raw_op);
        co_return 0;
    }
}

sim::Task<void>
Maple::configStore(unsigned q, StoreOp op, std::uint64_t data)
{
    trace::LaneSpan span(tracer(), tr_config_, "config_store",
                         trace::Category::Maple);
    co_await pipeEnter(config_free_);
    switch (op) {
      case StoreOp::Close:
        ++queue_generation_[q];
        queues_[q].close();
        co_return;
      case StoreOp::ConfigQueues:
        applyQueueConfig(data);
        co_return;
      case StoreOp::LimaABase:
        lima_a_base_ = data;
        co_return;
      case StoreOp::LimaBBase:
        lima_b_base_ = data;
        co_return;
      case StoreOp::LimaRange:
        lima_range_ = data;
        co_return;
      case StoreOp::LimaLaunch: {
        {
            fault::ParkGuard park(eq_, "lima_space", params_.name);
            while (lima_cmds_.size() >= params_.lima_cmds) {
                sim::Signal wait = lima_space_wait_;
                co_await wait;
            }
        }
        LimaCmd cmd;
        cmd.a_base = lima_a_base_;
        cmd.b_base = lima_b_base_;
        cmd.start = static_cast<std::uint32_t>(lima_range_ & 0xffffffffu);
        cmd.end = static_cast<std::uint32_t>(lima_range_ >> 32);
        cmd.ctrl = unpackLimaControl(data);
        lima_cmds_.push_back(cmd);
        if (!lima_running_) {
            lima_running_ = true;
            sim::spawnDetached(eq_, limaWorker());
        }
        co_return;
      }
      case StoreOp::PrefetchPtr:
        sim::spawnDetached(eq_, speculativePrefetch(data));
        co_return;
      case StoreOp::ResetCounters:
        for (auto &c : counters_)
            c.reset();
        co_return;
      case StoreOp::AmoAddend:
        amo_addend_[q] = data;
        co_return;
      case StoreOp::QueueTimeout:
        queue_timeout_[q] = data;
        // Wake the queue's parked waiters so the new bound takes effect on
        // them: they re-read the register, re-check their predicate, and
        // either re-park under the new deadline or time out. Without the
        // kick, an op parked with bound 0 would never observe the re-arm.
        queues_[q].pulseWaiters();
        co_return;
      case StoreOp::Quiesce:
        quiesced_[q] = data != 0 ? 1 : 0;
        co_return;
      case StoreOp::DeviceReset:
        deviceReset(q);
        co_return;
      default:
        MAPLE_WARN("%s: unknown store op %u", params_.name.c_str(),
                   static_cast<unsigned>(op));
        co_return;
    }
}

sim::Task<void>
Maple::speculativePrefetch(sim::Addr vaddr)
{
    mem::Translation tr = co_await mmu_.translate(vaddr, /*write=*/false);
    if (tr.fault)
        co_return;  // speculative: drop on fault
    bumpCounter(Counter::PrefetchesIssued);
    if (params_.coherent && w_.llc_port) {
        // Protocol-correct prefetch: warm the line's home slice through the
        // directory (which downgrades a dirty private owner) rather than
        // poking the LLC array directly. The checker deliberately ignores
        // Prefetch-kind DMA reads -- a prefetch grants no data to anyone.
        co_await w_.llc_port->request(mem::MemRequest::make(
            eq_, mem::RequesterClass::Prefetch, params_.tile, tr.paddr, 8,
            mem::AccessKind::Prefetch));
    } else if (w_.llc_cache) {
        w_.llc_cache->prefetch(tr.paddr);
    }
}

// ---------------------------------------------------------------------------
// LIMA: Loops of Indirect Memory Accesses (A[B[i]] for i in [start, end))
// ---------------------------------------------------------------------------

sim::Task<void>
Maple::limaWorker()
{
    while (!lima_cmds_.empty()) {
        LimaCmd cmd = lima_cmds_.front();
        lima_cmds_.pop_front();
        sim::Signal wake = std::exchange(lima_space_wait_, sim::Signal{});
        wake.set(sim::Unit{});
        bumpCounter(Counter::LimaCommands);
        co_await limaOne(cmd);
    }
    lima_running_ = false;
}

sim::Task<void>
Maple::limaOne(const LimaCmd &cmd)
{
    const unsigned b_elem = cmd.ctrl.b_elem_bytes;
    const unsigned a_elem = cmd.ctrl.a_elem_bytes;
    MAPLE_ASSERT(b_elem == 4 || b_elem == 8, "bad LIMA index width");

    // Double-buffered chunk fetch: translate + issue the DRAM read for one
    // 64B chunk of B, and while iterating it, the next chunk's fetch is
    // already in flight (the scratchpad holds both).
    struct ChunkFetch {
        bool valid = false;
        bool fault = false;
        sim::Addr first_pa = 0;      ///< paddr of the first covered element
        std::uint64_t first = 0;     ///< index of the first covered element
        std::uint64_t last = 0;      ///< one past the last covered element
        sim::Signal arrived;
    };

    auto startFetch = [this, &cmd, b_elem](std::uint64_t i) -> sim::Task<ChunkFetch> {
        ChunkFetch f;
        f.valid = true;
        f.first = i;
        sim::Addr b_vaddr = cmd.b_base + i * b_elem;
        mem::Translation tr = co_await mmu_.translate(b_vaddr, false);
        if (tr.fault) {
            MAPLE_WARN("%s: LIMA fault on B at va 0x%llx; aborting command",
                       params_.name.c_str(), (unsigned long long)b_vaddr);
            f.fault = true;
            f.arrived.set(sim::Unit{});
            co_return f;
        }
        f.first_pa = tr.paddr;
        sim::Addr chunk_pa = mem::lineBase(tr.paddr);
        std::uint64_t in_chunk = (mem::kLineSize - (tr.paddr - chunk_pa)) / b_elem;
        f.last = std::min<std::uint64_t>(cmd.end, i + in_chunk);
        bumpCounter(Counter::MemRequests);
        auto fetch = [](Maple *self, sim::Addr pa, sim::Signal done) -> sim::Task<void> {
            co_await self->w_.dram_port->request(mem::MemRequest::make(
                self->eq_, mem::RequesterClass::MapleConsume,
                self->params_.tile, pa, mem::kLineSize,
                mem::AccessKind::Read));
            done.set(sim::Unit{});
        };
        sim::spawnDetached(eq_, fetch(this, chunk_pa, f.arrived));
        co_return f;
    };

    if (cmd.start >= cmd.end)
        co_return;
    ChunkFetch cur = co_await startFetch(cmd.start);
    while (cur.valid && !cur.fault) {
        ChunkFetch next;
        if (cur.last < cmd.end)
            next = co_await startFetch(cur.last);
        co_await cur.arrived;

        // Iterate word by word over the elements present in this chunk.
        for (std::uint64_t i = cur.first; i < cur.last; ++i) {
            co_await sim::delay(eq_, 1);
            sim::Addr elem_pa = cur.first_pa + (i - cur.first) * b_elem;
            std::uint64_t index = 0;
            w_.pm->read(elem_pa, &index, b_elem);
            bumpCounter(Counter::LimaElements);
            sim::Addr a_vaddr = cmd.a_base + index * a_elem;
            if (cmd.ctrl.speculative) {
                co_await speculativePrefetch(a_vaddr);
            } else {
                co_await pipeEnter(produce_free_);
                co_await pointerProduceInner(cmd.ctrl.target_queue, a_vaddr);
            }
        }
        cur = std::move(next);
    }
}

void
Maple::saveState(ckpt::Sink &out) const
{
    MAPLE_ASSERT(produce_inflight_ == 0 && mmio_pending_ == 0 &&
                     !pipe_head_held_ && lima_cmds_.empty() && !lima_running_,
                 "snapshot with in-flight MAPLE work");
    out.u32(params_.max_queues);
    for (const MapleQueue &q : queues_)
        q.saveState(out);
    for (unsigned g : queue_generation_)
        out.u32(g);
    for (unsigned g : queue_abort_epoch_)
        out.u32(g);
    for (std::uint8_t s : queue_status_)
        out.u8(s);
    for (std::uint8_t s : produce_status_)
        out.u8(s);
    for (std::uint8_t s : consume_status_)
        out.u8(s);
    for (sim::Cycle t : queue_timeout_)
        out.u64(t);
    for (const ErrorState &e : err_) {
        out.b(e.valid);
        out.u32(static_cast<std::uint32_t>(e.cause));
        out.u64(e.addr);
        out.u32(e.count);
        out.u64(e.latched_at);
    }
    for (std::uint8_t q : quiesced_)
        out.u8(q);
    out.vecU64(accept_count_);
    out.u64(produce_free_);
    out.u64(consume_free_);
    out.u64(config_free_);
    out.u64(mmio_release_);
    for (unsigned p : produce_inflight_q_)
        out.u32(p);
    out.vecU64(amo_addend_);
    out.vecU64(amo_seq_alloc_);
    out.vecU64(amo_seq_commit_);
    out.u64(lima_a_base_);
    out.u64(lima_b_base_);
    out.u64(lima_range_);
    out.u64(last_fault_vaddr_);
    for (const sim::Counter &c : counters_)
        c.saveState(out);
    stats_.saveState(out);
    mmu_.saveState(out);
    // Cached lane-group handles: the tracer's table round-trips, so the ids
    // must too or a restored device would mint duplicate lane groups.
    out.u32(tr_produce_);
    out.u32(tr_consume_);
    out.u32(tr_config_);
}

void
Maple::loadState(ckpt::Source &in)
{
    MAPLE_ASSERT(produce_inflight_ == 0 && mmio_pending_ == 0 &&
                     !pipe_head_held_ && lima_cmds_.empty() && !lima_running_,
                 "restore with in-flight MAPLE work");
    std::uint32_t nq = in.u32();
    MAPLE_CHECK(nq == params_.max_queues, ckpt::SnapshotError,
                "MAPLE queue-count mismatch in snapshot (%s)",
                params_.name.c_str());
    for (MapleQueue &q : queues_)
        q.loadState(in);
    for (unsigned &g : queue_generation_)
        g = in.u32();
    for (unsigned &g : queue_abort_epoch_)
        g = in.u32();
    for (std::uint8_t &s : queue_status_)
        s = in.u8();
    for (std::uint8_t &s : produce_status_)
        s = in.u8();
    for (std::uint8_t &s : consume_status_)
        s = in.u8();
    for (sim::Cycle &t : queue_timeout_)
        t = in.u64();
    for (ErrorState &e : err_) {
        e.valid = in.b();
        e.cause = static_cast<fault::FaultClass>(in.u32());
        e.addr = in.u64();
        e.count = in.u32();
        e.latched_at = in.u64();
    }
    for (std::uint8_t &q : quiesced_)
        q = in.u8();
    accept_count_ = in.vecU64();
    produce_free_ = in.u64();
    consume_free_ = in.u64();
    config_free_ = in.u64();
    mmio_release_ = in.u64();
    for (unsigned &p : produce_inflight_q_)
        p = in.u32();
    amo_addend_ = in.vecU64();
    amo_seq_alloc_ = in.vecU64();
    amo_seq_commit_ = in.vecU64();
    lima_a_base_ = in.u64();
    lima_b_base_ = in.u64();
    lima_range_ = in.u64();
    last_fault_vaddr_ = in.u64();
    for (sim::Counter &c : counters_)
        c.loadState(in);
    stats_.loadState(in);
    mmu_.loadState(in);
    tr_produce_ = in.u32();
    tr_consume_ = in.u32();
    tr_config_ = in.u32();
}

}  // namespace maple::core
