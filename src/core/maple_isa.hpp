/**
 * @file
 * MAPLE's MMIO "instruction set": how API operations are encoded into plain
 * load/store addresses within the device's 4KB page.
 *
 * Following the paper (Section 3.6), the word index within the page encodes
 * the operation: bits [8:3] give 64 load opcodes and 64 store opcodes, and
 * bits [11:9] select one of up to 8 queues. No ISA extension is involved --
 * any core that can issue loads and stores can drive MAPLE.
 */
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace maple::core {

inline constexpr unsigned kOpShift = 3;
inline constexpr unsigned kOpBits = 6;
inline constexpr unsigned kQueueShift = kOpShift + kOpBits;  // bit 9
inline constexpr unsigned kQueueBits = 3;
inline constexpr unsigned kMaxQueuesPerPage = 1u << kQueueBits;

/** Operations carried by MMIO loads (they return a value). */
enum class LoadOp : std::uint8_t {
    Consume = 0,       ///< pop one entry from the queue (blocks until valid)
    ConsumePair = 1,   ///< pop two 32-bit entries packed into one 64-bit word
    Open = 2,          ///< bind the queue; returns 1 on success, 0 if taken
    Occupancy = 3,     ///< debug: current number of reserved entries
    FaultVaddr = 4,    ///< driver: virtual address of the last page fault
    QueueConfig = 5,   ///< debug: (capacity << 8) | entry_bytes
    ConsumePoll = 6,   ///< non-blocking consume: pops if ready, else status
    QueueStatus = 7,   ///< software-visible status of the last queue op
    // Architectural error-reporting registers (read by the recovery driver).
    // All are per queue: the addressed queue's latch, quiesce and in-flight
    // state, so concurrent recoveries on different queues stay independent.
    ErrStatus = 8,     ///< packed: bit0 error latched, bit1 quiesced,
                       ///< bits[15:8] error count, bits[31:16] produce ops
                       ///< still in flight on the queue
    ErrCause = 9,      ///< FaultClass of the first latched hard fault
    ErrAddr = 10,      ///< faulting address (vaddr/paddr) of that fault
    AcceptCount = 11,  ///< per-queue count of accepted produce-class ops;
                       ///< survives DeviceReset (disambiguates replay)
    // Direction-split status: QueueStatus is written by *both* produce- and
    // consume-class ops (legacy semantics), which races when a producer and
    // a consumer core drive the same queue. The recovery driver reads the
    // per-direction registers instead, which only its own ops can clobber.
    ProduceStatus = 12,///< status of the last produce-class op on the queue
    ConsumeStatus = 13,///< status of the last consume-class op on the queue
    CounterBase = 16,  ///< ops [16, 64) read performance counter (op - 16)
};

/** Operations carried by MMIO stores (the payload is the operand). */
enum class StoreOp : std::uint8_t {
    ProduceData = 0,   ///< push the payload into the queue
    ProducePtr = 1,    ///< payload is a virtual address: fetch + enqueue
    Close = 2,         ///< release + drain the queue
    ConfigQueues = 3,  ///< payload packs (count, entries, entry_bytes)
    LimaABase = 4,     ///< LIMA: base virtual address of data array A
    LimaBBase = 5,     ///< LIMA: base virtual address of index array B
    LimaRange = 6,     ///< LIMA: packed (start_index, end_index) u32 pair
    LimaLaunch = 7,    ///< LIMA: packed control word; enqueues the command
    PrefetchPtr = 8,   ///< speculative prefetch of payload vaddr into the LLC
    ResetCounters = 9, ///< zero all performance counters
    // Extension ops (Section 3: the programming model is "easily extensible
    // to incorporate ... Read-Modify-Write atomic operations"):
    AmoAddend = 10,    ///< latch the per-queue addend for ProduceAmoAdd
    ProduceAmoAdd = 11,///< payload is a vaddr: fetch-and-add (addend reg),
                       ///< old value lands in the queue in program order
    QueueTimeout = 12, ///< per-queue wait bound in cycles (0 = block forever);
                       ///< takes effect on already-parked ops too (the store
                       ///< wakes them to re-read the bound)
    // Recovery control (driven by the OS-layer driver, os/maple_driver):
    Quiesce = 13,      ///< payload 1: stop accepting produce/consume-class
                       ///< ops on the queue (they return
                       ///< MapleStatus::Quiesced); payload 0: resume. Other
                       ///< queues and the config pipeline stay live.
    DeviceReset = 14,  ///< per-queue reset: drop queue contents (geometry and
                       ///< binding preserved), abort parked waiters and
                       ///< in-flight fills, flush the device TLB, clear the
                       ///< queue's error latch and overwrite its status
                       ///< registers with Aborted (a stale pre-reset Ok must
                       ///< not survive). Counters and AcceptCount survive.
};

/**
 * Software-visible outcome of the last produce/consume-class op on a queue,
 * readable via LoadOp::QueueStatus. This is the paper's non-blocking polling
 * mode: instead of parking forever, software latches a timeout
 * (StoreOp::QueueTimeout) or polls (LoadOp::ConsumePoll) and branches on
 * the status register.
 */
enum class MapleStatus : std::uint8_t {
    Ok = 0,        ///< the op completed normally
    Empty = 1,     ///< ConsumePoll found no ready entry
    TimedOut = 2,  ///< a timed produce/consume gave up at the bound
    Poisoned = 3,  ///< a consume popped a hard-fault-poisoned entry
    Quiesced = 4,  ///< the op was dropped: device quiesced for recovery
    Aborted = 5,   ///< a parked op unwound because DeviceReset hit its queue
};

/** Index of a performance counter readable via LoadOp::CounterBase + idx. */
enum class Counter : std::uint8_t {
    ProducedData = 0,
    ProducedPtrs = 1,
    Consumed = 2,
    LimaElements = 3,
    LimaCommands = 4,
    FullStallCycles = 5,   ///< cycles produce ops waited on a full queue
    EmptyStallCycles = 6,  ///< cycles consume ops waited on an empty queue
    MemRequests = 7,
    TlbMisses = 8,
    PageFaults = 9,
    PrefetchesIssued = 10,
    TimedOutOps = 11,      ///< produce/consume ops that hit their timeout
    PoisonedResponses = 12,///< consumes that returned poisoned data
    HardFaults = 13,       ///< hard faults latched by this device
    kCount
};

inline sim::Addr
encodeOp(sim::Addr page_base, unsigned queue, unsigned op)
{
    return page_base | (sim::Addr(queue) << kQueueShift) | (sim::Addr(op) << kOpShift);
}

inline sim::Addr
encodeLoad(sim::Addr page_base, unsigned queue, LoadOp op)
{
    return encodeOp(page_base, queue, static_cast<unsigned>(op));
}

inline sim::Addr
encodeStore(sim::Addr page_base, unsigned queue, StoreOp op)
{
    return encodeOp(page_base, queue, static_cast<unsigned>(op));
}

inline unsigned decodeQueue(sim::Addr a) { return (a >> kQueueShift) & (kMaxQueuesPerPage - 1); }
inline unsigned decodeOp(sim::Addr a) { return (a >> kOpShift) & ((1u << kOpBits) - 1); }

/** Payload packing for StoreOp::ConfigQueues. */
inline std::uint64_t
packQueueConfig(unsigned count, unsigned entries, unsigned entry_bytes)
{
    return (std::uint64_t(count) << 32) | (std::uint64_t(entries) << 8) | entry_bytes;
}

struct QueueConfigPayload {
    unsigned count, entries, entry_bytes;
};

inline QueueConfigPayload
unpackQueueConfig(std::uint64_t v)
{
    return {static_cast<unsigned>(v >> 32),
            static_cast<unsigned>((v >> 8) & 0xffffff),
            static_cast<unsigned>(v & 0xff)};
}

/** Control word for StoreOp::LimaLaunch. */
struct LimaControl {
    std::uint8_t target_queue = 0;   ///< destination queue (non-speculative)
    std::uint8_t b_elem_bytes = 4;   ///< element width of index array B
    std::uint8_t a_elem_bytes = 4;   ///< element width of data array A
    bool speculative = false;        ///< true: prefetch into LLC, no queue
};

inline std::uint64_t
packLimaControl(const LimaControl &c)
{
    return (std::uint64_t(c.speculative) << 24) | (std::uint64_t(c.a_elem_bytes) << 16) |
           (std::uint64_t(c.b_elem_bytes) << 8) | c.target_queue;
}

inline LimaControl
unpackLimaControl(std::uint64_t v)
{
    LimaControl c;
    c.target_queue = static_cast<std::uint8_t>(v & 0xff);
    c.b_elem_bytes = static_cast<std::uint8_t>((v >> 8) & 0xff);
    c.a_elem_bytes = static_cast<std::uint8_t>((v >> 16) & 0xff);
    c.speculative = ((v >> 24) & 1) != 0;
    return c;
}

inline std::uint64_t
packRange(std::uint32_t start, std::uint32_t end)
{
    return (std::uint64_t(end) << 32) | start;
}

}  // namespace maple::core
