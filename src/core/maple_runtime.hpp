/**
 * @file
 * MAPLE's user-space software API (Section 3.1-3.2 of the paper).
 *
 * Every operation below compiles down to ordinary loads/stores against the
 * device's MMIO page, which the OS mapped into the process's address space.
 * There are no new instructions: INIT/OPEN/CLOSE/PRODUCE/CONSUME/PRODUCE_PTR
 * plus the LIMA and speculative-prefetch operations and the debug/counter
 * interface are all just memory accesses issued by an off-the-shelf core.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "core/maple.hpp"
#include "core/maple_isa.hpp"
#include "cpu/core.hpp"
#include "os/kernel.hpp"
#include "os/maple_driver.hpp"
#include "sim/coro.hpp"

namespace maple::core {

/** One LIMA request: prefetch A[B[i]] for i in [start, end). */
struct LimaRequest {
    sim::Addr a_base = 0;           ///< virtual base of data array A
    sim::Addr b_base = 0;           ///< virtual base of index array B
    std::uint32_t start = 0;        ///< first index (inclusive)
    std::uint32_t end = 0;          ///< last index (exclusive)
    unsigned b_elem_bytes = 4;
    unsigned a_elem_bytes = 4;
    bool speculative = false;       ///< true: LLC prefetch; false: into queue
    unsigned target_queue = 0;      ///< destination queue when non-speculative
};

/**
 * Software handle to one MAPLE instance mapped into one process.
 * Construct via attach(), which performs the OS work: map the MMIO page,
 * point the device MMU at the process page table, and install the driver's
 * page-fault handler.
 */
class MapleApi {
  public:
    static MapleApi
    attach(os::Process &proc, Maple &device)
    {
        os::RecoveryConfig rc;
        rc.mergeEnv();
        return attach(proc, device, rc);
    }

    /**
     * Attach with an explicit recovery policy. When @p rc .enabled the OS
     * instantiates the recovery driver (os::MapleDriver) and the *Reliable
     * operations below route through it; otherwise they are plain aliases of
     * the raw operations and cost nothing extra.
     */
    static MapleApi
    attach(os::Process &proc, Maple &device, const os::RecoveryConfig &rc)
    {
        sim::Addr base = proc.mapMmio(device.params().mmio_base);
        proc.attachMmu(&device.mmu());
        device.setDriverFaultHandler(proc.kernel().makeFaultHandler(proc));
        MapleApi api(base, &device);
        if (rc.enabled)
            api.driver_ = std::make_shared<os::MapleDriver>(proc, device, base, rc);
        return api;
    }

    /** User virtual address of the device page. */
    sim::Addr base() const { return base_; }
    Maple &device() { return *device_; }

    /** INIT: carve the scratchpad into @p queues queues. */
    sim::Task<void>
    init(cpu::Core &core, unsigned queues, unsigned entries, unsigned entry_bytes)
    {
        co_await core.store(encodeStore(base_, 0, StoreOp::ConfigQueues),
                            packQueueConfig(queues, entries, entry_bytes));
        co_await core.storeFence();  // configuration must land before use
    }

    /** OPEN: bind queue @p q; returns true on success. */
    sim::Task<bool>
    open(cpu::Core &core, unsigned q)
    {
        std::uint64_t got =
            co_await core.load(encodeLoad(base_, q, LoadOp::Open));
        co_return got != 0;
    }

    /** CLOSE: release queue @p q, discarding in-flight entries. */
    sim::Task<void>
    close(cpu::Core &core, unsigned q)
    {
        co_await core.store(encodeStore(base_, q, StoreOp::Close), 0);
        co_await core.storeFence();
    }

    /** PRODUCE: push a data value. */
    sim::Task<void>
    produce(cpu::Core &core, unsigned q, std::uint64_t data)
    {
        co_await core.store(encodeStore(base_, q, StoreOp::ProduceData), data);
    }

    /** PRODUCE_PTR: push a pointer for MAPLE to fetch asynchronously. */
    sim::Task<void>
    producePtr(cpu::Core &core, unsigned q, sim::Addr ptr)
    {
        co_await core.store(encodeStore(base_, q, StoreOp::ProducePtr), ptr);
    }

    /** CONSUME: pop one entry (blocks until data is available). */
    sim::Task<std::uint64_t>
    consume(cpu::Core &core, unsigned q)
    {
        co_return co_await core.load(encodeLoad(base_, q, LoadOp::Consume));
    }

    /** CONSUME of two 4-byte entries packed into one 8-byte load. */
    sim::Task<std::uint64_t>
    consumePair(cpu::Core &core, unsigned q)
    {
        co_return co_await core.load(encodeLoad(base_, q, LoadOp::ConsumePair));
    }

    /** PREFETCH: speculative prefetch of @p ptr into the LLC. */
    sim::Task<void>
    prefetch(cpu::Core &core, sim::Addr ptr)
    {
        co_await core.store(encodeStore(base_, 0, StoreOp::PrefetchPtr), ptr);
    }

    /// @name Non-blocking / timed operation (the hardened error paths)
    /// Software that cannot tolerate an unbounded park latches a per-queue
    /// timeout (or polls) and branches on the queue status register instead.
    /// @{

    /** Bound produce/consume waits on queue @p q; 0 restores block-forever. */
    sim::Task<void>
    setQueueTimeout(cpu::Core &core, unsigned q, sim::Cycle cycles)
    {
        co_await core.store(encodeStore(base_, q, StoreOp::QueueTimeout), cycles);
        co_await core.storeFence();  // the bound must land before the next op
    }

    /** Outcome of the last produce/consume-class op on queue @p q. */
    sim::Task<MapleStatus>
    queueStatus(cpu::Core &core, unsigned q)
    {
        std::uint64_t got =
            co_await core.load(encodeLoad(base_, q, LoadOp::QueueStatus));
        co_return static_cast<MapleStatus>(got);
    }

    /**
     * Non-blocking CONSUME: pops an entry if one is ready. Check
     * queueStatus() (Ok vs Empty) to distinguish data from "try again" --
     * a ready entry may legitimately hold the value 0.
     */
    sim::Task<std::uint64_t>
    consumePoll(cpu::Core &core, unsigned q)
    {
        co_return co_await core.load(encodeLoad(base_, q, LoadOp::ConsumePoll));
    }

    /**
     * CONSUME bounded by the queue's timeout register. Returns the entry
     * and sets @p status to Ok, or returns 0 with @p status TimedOut.
     */
    sim::Task<std::uint64_t>
    consumeTimed(cpu::Core &core, unsigned q, MapleStatus &status)
    {
        std::uint64_t v =
            co_await core.load(encodeLoad(base_, q, LoadOp::Consume));
        status = co_await queueStatus(core, q);
        co_return v;
    }

    /**
     * PRODUCE bounded by the queue's timeout register. Returns false (and
     * the value is dropped by the device) when the wait hit the bound.
     */
    sim::Task<bool>
    produceTimed(cpu::Core &core, unsigned q, std::uint64_t data)
    {
        co_await core.store(encodeStore(base_, q, StoreOp::ProduceData), data);
        co_await core.storeFence();  // status is undefined until the store lands
        co_return co_await queueStatus(core, q) == MapleStatus::Ok;
    }

    /// @}

    /// @name Reliable operation (fault-recovery runtime, DESIGN.md §10)
    /// With the recovery driver attached these journal, retry with
    /// deterministic backoff, trigger device recovery on latched errors and
    /// fall back to the software queue once the queue degrades. Without a
    /// driver they are exact pass-throughs of the raw operations.
    /// @{

    /** PRODUCE with retry/recovery; true once the value is delivered. */
    sim::Task<bool>
    produceReliable(cpu::Core &core, unsigned q, std::uint64_t data)
    {
        if (!driver_) {
            co_await produce(core, q, data);
            co_return true;
        }
        co_return co_await driver_->produce(core, q, data);
    }

    /** PRODUCE_PTR with retry/recovery; true once the value is delivered. */
    sim::Task<bool>
    producePtrReliable(cpu::Core &core, unsigned q, sim::Addr ptr)
    {
        if (!driver_) {
            co_await producePtr(core, q, ptr);
            co_return true;
        }
        co_return co_await driver_->producePtr(core, q, ptr);
    }

    /** CONSUME with retry/recovery; never returns poisoned data. */
    sim::Task<std::uint64_t>
    consumeReliable(cpu::Core &core, unsigned q)
    {
        if (!driver_)
            co_return co_await consume(core, q);
        co_return co_await driver_->consume(core, q);
    }

    /** The recovery driver, or nullptr when recovery is disabled. */
    os::MapleDriver *driver() { return driver_.get(); }

    /// @}

    /// @name Read-modify-write extension (Section 3's "easily extensible")
    /// @{

    /** Latch the addend used by subsequent produceAmoAdd on queue @p q. */
    sim::Task<void>
    setAmoAddend(cpu::Core &core, unsigned q, std::uint64_t addend)
    {
        co_await core.store(encodeStore(base_, q, StoreOp::AmoAddend), addend);
    }

    /**
     * Offloaded fetch-and-add: MAPLE performs a coherent RMW at @p ptr and
     * delivers the *old* value into queue @p q in program order -- the
     * Access thread never stalls on the atomic's round trip.
     */
    sim::Task<void>
    produceAmoAdd(cpu::Core &core, unsigned q, sim::Addr ptr)
    {
        co_await core.store(encodeStore(base_, q, StoreOp::ProduceAmoAdd), ptr);
    }

    /// @}

    /**
     * LIMA: offload a whole loop of indirect accesses with one API call.
     * The runtime shadows the device's base/control registers so repeated
     * launches over the same arrays cost a single store.
     */
    sim::Task<void>
    lima(cpu::Core &core, const LimaRequest &req)
    {
        if (shadow_a_ != req.a_base) {
            co_await core.store(encodeStore(base_, 0, StoreOp::LimaABase), req.a_base);
            shadow_a_ = req.a_base;
        }
        if (shadow_b_ != req.b_base) {
            co_await core.store(encodeStore(base_, 0, StoreOp::LimaBBase), req.b_base);
            shadow_b_ = req.b_base;
        }
        co_await core.store(encodeStore(base_, 0, StoreOp::LimaRange),
                            packRange(req.start, req.end));
        LimaControl ctrl;
        ctrl.target_queue = static_cast<std::uint8_t>(req.target_queue);
        ctrl.b_elem_bytes = static_cast<std::uint8_t>(req.b_elem_bytes);
        ctrl.a_elem_bytes = static_cast<std::uint8_t>(req.a_elem_bytes);
        ctrl.speculative = req.speculative;
        co_await core.store(encodeStore(base_, 0, StoreOp::LimaLaunch),
                            packLimaControl(ctrl));
    }

    /** Debug: read a hardware performance counter. */
    sim::Task<std::uint64_t>
    readCounter(cpu::Core &core, Counter c)
    {
        unsigned op = static_cast<unsigned>(LoadOp::CounterBase) +
                      static_cast<unsigned>(c);
        co_return co_await core.load(encodeOp(base_, 0, op));
    }

    /** Debug: queue occupancy. */
    sim::Task<std::uint64_t>
    occupancy(cpu::Core &core, unsigned q)
    {
        co_return co_await core.load(encodeLoad(base_, q, LoadOp::Occupancy));
    }

    sim::Task<void>
    resetCounters(cpu::Core &core)
    {
        co_await core.store(encodeStore(base_, 0, StoreOp::ResetCounters), 0);
        co_await core.storeFence();
    }

  private:
    MapleApi(sim::Addr base, Maple *device) : base_(base), device_(device) {}

    sim::Addr base_;
    Maple *device_;
    sim::Addr shadow_a_ = sim::kBadAddr;
    sim::Addr shadow_b_ = sim::kBadAddr;
    /// Shared so MapleApi stays copyable (it is passed around by value).
    std::shared_ptr<os::MapleDriver> driver_;
};

}  // namespace maple::core
