/**
 * @file
 * First-order area model of MAPLE's RTL (Section 5.4).
 *
 * The paper reports that a MAPLE instance with 8 queues sharing a 1KB
 * scratchpad synthesizes to about 1.1% of an Ariane core in the 12nm tapeout
 * node. We do not have the 12nm libraries, so this model decomposes the
 * design into SRAM bits, TLB CAM bits, pipeline registers and combinational
 * logic with per-structure area coefficients *calibrated so the published
 * headline (Ariane ratio) is met at the paper's configuration*; the point of
 * the model is how area scales with the RTL parameters (scratchpad size,
 * queue count, TLB entries), which is structural, not library-specific.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace maple::core {

struct AreaParams {
    unsigned scratchpad_bytes = 1024;
    unsigned queues = 8;
    unsigned tlb_entries = 16;
    unsigned produce_buffer = 16;
    unsigned lima_cmds = 16;
};

struct AreaBreakdown {
    struct Item {
        std::string component;
        double um2;
    };
    std::vector<Item> items;
    double total_um2 = 0;
    double ariane_um2 = 0;      ///< reference in-order core (w/o caches)
    double ratio() const { return total_um2 / ariane_um2; }
};

/** Compute the component-level area estimate for @p p. */
AreaBreakdown mapleArea(const AreaParams &p = {});

}  // namespace maple::core
