/**
 * @file
 * A MAPLE hardware queue: a circular FIFO carved out of the device's
 * scratchpad, with slot reservation and per-slot valid bits.
 *
 * Pointer-produces reserve a slot at the tail immediately (in program order)
 * and the DRAM response fills it later, using the slot index as the memory
 * transaction ID -- this is how out-of-order memory responses are re-ordered
 * back into program order. Consumers pop only when the head slot is valid.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/coro.hpp"
#include "sim/error.hpp"
#include "sim/log.hpp"
#include "sim/stats.hpp"

namespace maple::core {

class MapleQueue {
  public:
    /** (Re)configure the queue geometry; resets all state. */
    void
    configure(unsigned capacity, unsigned entry_bytes)
    {
        MAPLE_CHECK(capacity > 0, sim::QueueMisuseError,
                    "queue capacity must be nonzero");
        MAPLE_CHECK(entry_bytes == 4 || entry_bytes == 8, sim::QueueMisuseError,
                    "entry size must be 4 or 8 bytes (got %u)", entry_bytes);
        capacity_ = capacity;
        entry_bytes_ = entry_bytes;
        data_.assign(capacity, 0);
        valid_.assign(capacity, false);
        poisoned_.assign(capacity, false);
        head_ = tail_ = reserved_ = 0;
        peak_occupancy_ = 0;
        open_ = false;
        configured_ = true;
        wakeSpace();
        wakeData();
    }

    void
    reset()
    {
        configured_ = false;
        open_ = false;
        capacity_ = 0;
        data_.clear();
        valid_.clear();
        poisoned_.clear();
        head_ = tail_ = reserved_ = 0;
        peak_occupancy_ = 0;
        wakeSpace();
        wakeData();
    }

    bool configured() const { return configured_; }
    bool open() const { return open_; }
    unsigned capacity() const { return capacity_; }
    unsigned entryBytes() const { return entry_bytes_; }
    unsigned occupancy() const { return reserved_; }

    /** High-water mark of occupancy since configure() (telemetry). */
    unsigned peakOccupancy() const { return peak_occupancy_; }
    bool full() const { return reserved_ == capacity_; }
    bool empty() const { return reserved_ == 0; }

    /** Try to bind the queue to a software context. */
    bool
    tryOpen()
    {
        if (!configured_ || open_)
            return false;
        open_ = true;
        return true;
    }

    /** Release the queue; in-flight entries are discarded. */
    void
    close()
    {
        open_ = false;
        head_ = tail_ = reserved_ = 0;
        valid_.assign(valid_.size(), false);
        poisoned_.assign(poisoned_.size(), false);
        wakeSpace();
        wakeData();
    }

    /**
     * Drop the queue contents (DeviceReset): every entry — valid, reserved
     * or in-flight — is discarded, geometry and the open binding survive.
     * In-flight fills for dropped slots are fenced off by the device's
     * per-queue generation counter, not by this class.
     */
    void
    flushContents()
    {
        head_ = tail_ = reserved_ = 0;
        valid_.assign(valid_.size(), false);
        poisoned_.assign(poisoned_.size(), false);
        wakeSpace();
        wakeData();
    }

    /**
     * Reserve the tail slot (caller must have checked !full()).
     * @return the slot index, used as the memory transaction ID.
     */
    unsigned
    reserveSlot()
    {
        MAPLE_CHECK(configured_ && !full(), sim::QueueMisuseError,
                    "reserve on full/unconfigured queue");
        unsigned slot = tail_;
        tail_ = (tail_ + 1) % capacity_;
        ++reserved_;
        peak_occupancy_ = std::max(peak_occupancy_, reserved_);
        return slot;
    }

    /** Fill a reserved slot with data (memory response or data-produce). */
    void
    fillSlot(unsigned slot, std::uint64_t value)
    {
        MAPLE_CHECK(slot < capacity_ && !valid_[slot], sim::QueueMisuseError,
                    "fill of slot %u is out of range or already valid", slot);
        data_[slot] = value;
        valid_[slot] = true;
        wakeData();
    }

    /**
     * Fill a reserved slot whose data a hard fault corrupted en route. The
     * slot becomes valid (it keeps FIFO order) but carries a poison bit the
     * consume pipeline surfaces as MapleStatus::Poisoned instead of data.
     */
    void
    fillSlotPoisoned(unsigned slot, std::uint64_t value)
    {
        fillSlot(slot, value);
        poisoned_[slot] = true;
    }

    /** True when the head entry is valid but poisoned. */
    bool
    headPoisoned(unsigned n = 1) const
    {
        for (unsigned i = 0; i < n; ++i) {
            if (poisoned_[(head_ + i) % capacity_])
                return true;
        }
        return false;
    }

    /** True when the next @p n entries at the head are ready to pop. */
    bool
    headValid(unsigned n = 1) const
    {
        if (!configured_ || reserved_ < n)
            return false;
        for (unsigned i = 0; i < n; ++i) {
            if (!valid_[(head_ + i) % capacity_])
                return false;
        }
        return true;
    }

    /** Pop the head entry (caller must have checked headValid()). */
    std::uint64_t
    pop()
    {
        MAPLE_CHECK(headValid(), sim::QueueMisuseError,
                    "pop on empty/invalid head");
        std::uint64_t v = data_[head_];
        valid_[head_] = false;
        poisoned_[head_] = false;
        head_ = (head_ + 1) % capacity_;
        --reserved_;
        wakeSpace();
        return v;
    }

    /// @name Wait points used by the produce/consume pipelines
    /// Waiters loop: grab the current signal, await it, re-check their
    /// condition. Signals resume waiters FIFO, preserving program order.
    /// @{
    sim::Signal spaceSignal() const { return space_; }
    sim::Signal dataSignal() const { return data_sig_; }

    /**
     * Spuriously wake every parked waiter so it re-evaluates its predicate.
     * Used when queue state other than occupancy changes under a waiter
     * (e.g. StoreOp::QueueTimeout re-arms the wait bound); waiters that find
     * their condition unchanged simply re-park in the same FIFO order.
     */
    void
    pulseWaiters()
    {
        wakeSpace();
        wakeData();
    }
    /// @}

    /**
     * Snapshot support. The wait Signals are not serialized: at a quiesced
     * point no producer/consumer coroutine is parked on them.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        out.b(configured_);
        out.b(open_);
        out.u32(capacity_);
        out.u32(entry_bytes_);
        out.vecU64(data_);
        out.u64(valid_.size());
        for (bool v : valid_)
            out.b(v);
        out.u64(poisoned_.size());
        for (bool p : poisoned_)
            out.b(p);
        out.u32(head_);
        out.u32(tail_);
        out.u32(reserved_);
        out.u32(peak_occupancy_);
    }

    void
    loadState(ckpt::Source &in)
    {
        configured_ = in.b();
        open_ = in.b();
        capacity_ = in.u32();
        entry_bytes_ = in.u32();
        data_ = in.vecU64();
        valid_.assign(in.u64(), false);
        for (std::size_t i = 0; i < valid_.size(); ++i)
            valid_[i] = in.b();
        poisoned_.assign(in.u64(), false);
        for (std::size_t i = 0; i < poisoned_.size(); ++i)
            poisoned_[i] = in.b();
        head_ = in.u32();
        tail_ = in.u32();
        reserved_ = in.u32();
        peak_occupancy_ = in.u32();
        pulseWaiters();
    }

  private:
    void
    wakeSpace()
    {
        sim::Signal s = std::exchange(space_, sim::Signal{});
        s.set(sim::Unit{});
    }

    void
    wakeData()
    {
        sim::Signal s = std::exchange(data_sig_, sim::Signal{});
        s.set(sim::Unit{});
    }

    bool configured_ = false;
    bool open_ = false;
    unsigned capacity_ = 0;
    unsigned entry_bytes_ = 4;
    std::vector<std::uint64_t> data_;
    std::vector<bool> valid_;
    std::vector<bool> poisoned_;
    unsigned head_ = 0;
    unsigned tail_ = 0;
    unsigned reserved_ = 0;
    unsigned peak_occupancy_ = 0;
    sim::Signal space_;
    sim::Signal data_sig_;
};

}  // namespace maple::core
