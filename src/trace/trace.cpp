#include "trace/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "sim/log.hpp"

namespace maple::trace {

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Maple: return "maple";
      case Category::Cache: return "cache";
      case Category::Noc:   return "noc";
      case Category::Core:  return "core";
      case Category::Mem:   return "mem";
      case Category::Os:    return "os";
      default:              return "?";
    }
}

const char *
stallCauseName(StallCause c)
{
    switch (c) {
      case StallCause::QueueFull:       return "queue_full";
      case StallCause::QueueEmpty:      return "queue_empty";
      case StallCause::ProduceBuffer:   return "produce_buffer";
      case StallCause::TlbMiss:         return "tlb_miss";
      case StallCause::Dram:            return "dram";
      case StallCause::NocBackpressure: return "noc_backpressure";
      case StallCause::FaultNoc:        return "fault_noc";
      case StallCause::FaultDram:       return "fault_dram";
      case StallCause::FaultTlb:        return "fault_tlb";
      case StallCause::FaultMmio:       return "fault_mmio";
      case StallCause::FaultRecovery:   return "fault_recovery";
      default:                          return "?";
    }
}

void
TraceConfig::mergeEnv()
{
    if (const char *p = std::getenv("MAPLE_TRACE"); p && *p) {
        enabled = true;
        json_path = p;
    }
    if (const char *p = std::getenv("MAPLE_TRACE_CSV"); p && *p) {
        enabled = true;
        csv_path = p;
    }
    if (const char *p = std::getenv("MAPLE_TRACE_INTERVAL"); p && *p) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(p, &end, 10);
        if (end && *end == '\0' && v > 0)
            sample_interval = v;
        else
            MAPLE_WARN("ignoring bad MAPLE_TRACE_INTERVAL '%s'", p);
    }
}

TraceManager::TraceManager(sim::EventQueue &eq, TraceConfig cfg)
    : eq_(eq), cfg_(std::move(cfg))
{
    MAPLE_ASSERT(cfg_.sample_interval > 0, "sample interval must be nonzero");
    next_sample_ = eq_.now() + cfg_.sample_interval;
    // Pre-size the hot recording containers so span/sample recording does
    // not reallocate mid-run and perturb host-perf measurements.
    events_.reserve(std::min<std::size_t>(cfg_.max_events, 1u << 16));
    tracks_.reserve(64);
    probes_.reserve(32);
    sample_times_.reserve(4096);
    eq_.attachTracer(this, &TraceManager::onAdvance);
}

TraceManager::~TraceManager()
{
    if (eq_.tracer() == this)
        eq_.detachTracer();
    if (!written_ && (!cfg_.json_path.empty() || !cfg_.csv_path.empty()))
        write();
}

TraceManager::TrackId
TraceManager::track(const std::string &name)
{
    tracks_.push_back(Track{name, {}, false});
    return static_cast<TrackId>(tracks_.size() - 1);
}

TraceManager::LaneGroupId
TraceManager::laneGroup(const std::string &base)
{
    groups_.push_back(LaneGroup{base, {}});
    return static_cast<LaneGroupId>(groups_.size() - 1);
}

void
TraceManager::record(const Event &ev)
{
    if (events_.size() >= cfg_.max_events) {
        ++dropped_;
        return;
    }
    events_.push_back(ev);
}

void
TraceManager::begin(TrackId t, const char *name, Category cat)
{
    MAPLE_ASSERT(t < tracks_.size(), "begin on unknown track");
    tracks_[t].stack.push_back(OpenSpan{name, cat, eq_.now()});
}

void
TraceManager::end(TrackId t)
{
    MAPLE_ASSERT(t < tracks_.size() && !tracks_[t].stack.empty(),
                 "end without matching begin");
    OpenSpan span = tracks_[t].stack.back();
    tracks_[t].stack.pop_back();
    record(Event{t, span.name, span.cat, false, span.start,
                 eq_.now() - span.start});
}

void
TraceManager::complete(TrackId t, const char *name, Category cat,
                       sim::Cycle start)
{
    MAPLE_ASSERT(t < tracks_.size() && start <= eq_.now(), "bad complete span");
    record(Event{t, name, cat, false, start, eq_.now() - start});
}

void
TraceManager::instant(TrackId t, const char *name, Category cat)
{
    MAPLE_ASSERT(t < tracks_.size(), "instant on unknown track");
    record(Event{t, name, cat, true, eq_.now(), 0});
}

TraceManager::Span
TraceManager::beginLane(LaneGroupId g, const char *name, Category cat)
{
    MAPLE_ASSERT(g < groups_.size(), "beginLane on unknown group");
    LaneGroup &group = groups_[g];
    TrackId tid = kNone;
    for (TrackId lane : group.lanes) {
        if (!tracks_[lane].lane_busy) {
            tid = lane;
            break;
        }
    }
    if (tid == kNone) {
        std::string lane_name = group.base;
        if (!group.lanes.empty())
            lane_name += "#" + std::to_string(group.lanes.size());
        tid = track(lane_name);
        group.lanes.push_back(tid);
    }
    tracks_[tid].lane_busy = true;
    tracks_[tid].stack.push_back(OpenSpan{name, cat, eq_.now()});
    return Span{tid, eq_.now()};
}

void
TraceManager::endLane(const Span &s)
{
    if (!s.valid())
        return;
    MAPLE_ASSERT(s.tid < tracks_.size() && tracks_[s.tid].lane_busy,
                 "endLane on a free lane");
    end(s.tid);
    tracks_[s.tid].lane_busy = false;
}

void
TraceManager::addProbe(const std::string &name, std::function<double()> probe)
{
    MAPLE_ASSERT(sample_times_.empty(),
                 "probes must be registered before sampling starts");
    probes_.push_back(Probe{name, std::move(probe), {}});
    probes_.back().values.reserve(4096);
}

void
TraceManager::advanceTo(sim::Cycle now)
{
    if (!enabled_ || probes_.empty())
        return;
    while (next_sample_ <= now) {
        sampleAt(next_sample_);
        next_sample_ += cfg_.sample_interval;
    }
}

void
TraceManager::sampleAt(sim::Cycle ts)
{
    sample_times_.push_back(ts);
    for (Probe &p : probes_)
        p.values.push_back(p.fn());
}

std::string
TraceManager::stallReport() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : stall_cycles_)
        total += c;
    std::ostringstream os;
    os << "stall attribution (" << total << " attributed wait cycles):\n";
    for (std::size_t i = 0; i < stall_cycles_.size(); ++i) {
        double share =
            total ? 100.0 * static_cast<double>(stall_cycles_[i]) /
                        static_cast<double>(total)
                  : 0.0;
        char line[96];
        std::snprintf(line, sizeof line, "  %-18s %12llu cycles  %5.1f%%\n",
                      stallCauseName(static_cast<StallCause>(i)),
                      (unsigned long long)stall_cycles_[i], share);
        os << line;
    }
    return os.str();
}

namespace {

/** JSON string escaping (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

void
TraceManager::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Thread-name metadata: one simulated track per Chrome "thread".
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << t
           << ",\"args\":{\"name\":\"" << jsonEscape(tracks_[t].name)
           << "\"}}";
    }

    // Duration / instant events (ts in trace-microseconds == cycles).
    for (const Event &ev : events_) {
        sep();
        os << "{\"ph\":\"" << (ev.is_instant ? "i" : "X") << "\",\"name\":\""
           << jsonEscape(ev.name) << "\",\"cat\":\"" << categoryName(ev.cat)
           << "\",\"pid\":0,\"tid\":" << ev.tid << ",\"ts\":" << ev.ts;
        if (ev.is_instant)
            os << ",\"s\":\"t\"";
        else
            os << ",\"dur\":" << ev.dur;
        os << "}";
    }

    // Time-series samples as Chrome counter events.
    for (const Probe &p : probes_) {
        for (std::size_t i = 0; i < sample_times_.size(); ++i) {
            sep();
            os << "{\"ph\":\"C\",\"name\":\"" << jsonEscape(p.name)
               << "\",\"pid\":0,\"ts\":" << sample_times_[i]
               << ",\"args\":{\"value\":" << p.values[i] << "}}";
        }
    }
    os << "\n],\n\"stallAttribution\":{";
    for (std::size_t i = 0; i < stall_cycles_.size(); ++i) {
        os << (i ? "," : "") << "\""
           << stallCauseName(static_cast<StallCause>(i))
           << "\":" << stall_cycles_[i];
    }
    os << "},\n\"metadata\":{\"sampleIntervalCycles\":" << cfg_.sample_interval
       << ",\"droppedEvents\":" << dropped_ << "}}\n";
}

void
TraceManager::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const Probe &p : probes_)
        os << "," << p.name;
    os << "\n";
    for (std::size_t i = 0; i < sample_times_.size(); ++i) {
        os << sample_times_[i];
        for (const Probe &p : probes_)
            os << "," << p.values[i];
        os << "\n";
    }
}

namespace {

/**
 * Per-path write counter: repeated writes to the same path within one
 * process (e.g. a bench sweeping many SoCs under MAPLE_TRACE) get ".N"
 * suffixed instead of clobbering earlier traces.
 */
std::string
uniquePath(const std::string &path)
{
    // Process-wide, so guard it: sharded runs can flush tracers for several
    // SoCs from different host worker threads.
    static std::mutex mu;
    static std::map<std::string, unsigned> writes;
    std::lock_guard<std::mutex> lock(mu);
    unsigned n = writes[path]++;
    if (n == 0)
        return path;
    std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || dot == 0)
        return path + "." + std::to_string(n);
    return path.substr(0, dot) + "." + std::to_string(n) + path.substr(dot);
}

}  // namespace

void
TraceManager::write()
{
    if (written_)
        return;
    written_ = true;
    if (!cfg_.json_path.empty()) {
        std::string path = uniquePath(cfg_.json_path);
        std::ofstream os(path);
        if (!os) {
            MAPLE_WARN("cannot write trace to %s", path.c_str());
        } else {
            writeJson(os);
            MAPLE_INFORM("wrote trace: %s (%zu events, %zu samples)",
                         path.c_str(), events_.size(), sample_times_.size());
        }
    }
    if (!cfg_.csv_path.empty()) {
        std::string path = uniquePath(cfg_.csv_path);
        std::ofstream os(path);
        if (!os)
            MAPLE_WARN("cannot write trace CSV to %s", path.c_str());
        else
            writeCsv(os);
    }
    if (cfg_.report_to_stderr)
        std::fputs(stallReport().c_str(), stderr);
}

void
TraceManager::saveState(ckpt::Sink &out) const
{
    // String table for the const char* literals carried by events and open
    // spans: first-seen *content* gets an id, written once. Keying by content
    // (not pointer) keeps snapshots canonical after a restore, where old
    // events carry interned copies and new events carry the literals.
    std::unordered_map<std::string_view, std::uint32_t> ids;
    std::vector<std::string_view> table;
    auto intern = [&](const char *s) -> std::uint32_t {
        auto [it, inserted] = ids.try_emplace(
            std::string_view(s), static_cast<std::uint32_t>(table.size()));
        if (inserted)
            table.push_back(it->first);
        return it->second;
    };

    // Pass 1: build the table in a deterministic order.
    for (const Track &t : tracks_) {
        for (const OpenSpan &s : t.stack)
            intern(s.name);
    }
    for (const Event &ev : events_)
        intern(ev.name);

    out.u64(table.size());
    for (std::string_view s : table)
        out.str(std::string(s));

    out.b(enabled_);
    out.u64(dropped_);
    for (std::uint64_t c : stall_cycles_)
        out.u64(c);

    out.u64(tracks_.size());
    for (const Track &t : tracks_) {
        out.str(t.name);
        out.b(t.lane_busy);
        out.u64(t.stack.size());
        for (const OpenSpan &s : t.stack) {
            out.u32(intern(s.name));
            out.u8(static_cast<std::uint8_t>(s.cat));
            out.u64(s.start);
        }
    }

    out.u64(groups_.size());
    for (const LaneGroup &g : groups_) {
        out.str(g.base);
        out.u64(g.lanes.size());
        for (TrackId lane : g.lanes)
            out.u32(lane);
    }

    out.u64(events_.size());
    for (const Event &ev : events_) {
        out.u32(ev.tid);
        out.u32(intern(ev.name));
        out.u8(static_cast<std::uint8_t>(ev.cat));
        out.b(ev.is_instant);
        out.u64(ev.ts);
        out.u64(ev.dur);
    }

    out.u64(probes_.size());
    for (const Probe &p : probes_) {
        out.str(p.name);
        out.u64(p.values.size());
        for (double v : p.values)
            out.f64(v);
    }
    out.u64(sample_times_.size());
    for (sim::Cycle t : sample_times_)
        out.u64(t);
    out.u64(next_sample_);
}

void
TraceManager::loadState(ckpt::Source &in)
{
    std::vector<const char *> table;
    for (std::uint64_t n = in.u64(); n > 0; --n) {
        interned_names_.push_back(in.str());
        table.push_back(interned_names_.back().c_str());
    }
    auto name_at = [&](std::uint32_t id) -> const char * {
        MAPLE_CHECK(id < table.size(), ckpt::SnapshotError,
                    "trace string-table id out of range");
        return table[id];
    };

    enabled_ = in.b();
    dropped_ = in.u64();
    for (std::uint64_t &c : stall_cycles_)
        c = in.u64();

    tracks_.clear();
    for (std::uint64_t n = in.u64(); n > 0; --n) {
        Track t;
        t.name = in.str();
        t.lane_busy = in.b();
        for (std::uint64_t m = in.u64(); m > 0; --m) {
            OpenSpan s;
            s.name = name_at(in.u32());
            s.cat = static_cast<Category>(in.u8());
            s.start = in.u64();
            t.stack.push_back(s);
        }
        tracks_.push_back(std::move(t));
    }

    groups_.clear();
    for (std::uint64_t n = in.u64(); n > 0; --n) {
        LaneGroup g;
        g.base = in.str();
        for (std::uint64_t m = in.u64(); m > 0; --m)
            g.lanes.push_back(in.u32());
        groups_.push_back(std::move(g));
    }

    events_.clear();
    for (std::uint64_t n = in.u64(); n > 0; --n) {
        Event ev;
        ev.tid = in.u32();
        ev.name = name_at(in.u32());
        ev.cat = static_cast<Category>(in.u8());
        ev.is_instant = in.b();
        ev.ts = in.u64();
        ev.dur = in.u64();
        events_.push_back(ev);
    }

    // Probe functions are host-side: the restoring Soc must have registered
    // the same probes in the same order (Soc's registration is
    // deterministic); only the sampled values are restored.
    std::uint64_t probes = in.u64();
    MAPLE_CHECK(probes == probes_.size(), ckpt::SnapshotError,
                "trace probe-count mismatch (snapshot %llu, live %zu)",
                (unsigned long long)probes, probes_.size());
    for (Probe &p : probes_) {
        std::string name = in.str();
        MAPLE_CHECK(name == p.name, ckpt::SnapshotError,
                    "trace probe mismatch: snapshot '%s', live '%s'",
                    name.c_str(), p.name.c_str());
        p.values.clear();
        for (std::uint64_t m = in.u64(); m > 0; --m)
            p.values.push_back(in.f64());
    }
    sample_times_.clear();
    for (std::uint64_t n = in.u64(); n > 0; --n)
        sample_times_.push_back(in.u64());
    next_sample_ = in.u64();
}

}  // namespace maple::trace
