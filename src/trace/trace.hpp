/**
 * @file
 * Cycle-accurate tracing & telemetry.
 *
 * A TraceManager is registered next to the EventQueue (EventQueue::tracer())
 * and collects three kinds of data while the simulation runs:
 *
 *  - Duration/instant events: begin/end spans with a category, placed on
 *    named tracks. Serialized agents (a blocking in-order core) use a fixed
 *    track with stack discipline, so spans nest by construction. Concurrent
 *    agents (a MAPLE pipeline with many ops in flight) use a *lane group*:
 *    each span grabs the lowest free lane of the group, so spans within one
 *    lane never overlap and the lane count visualizes pipeline occupancy.
 *
 *  - Periodic time-series samples: registered probes (queue occupancy, MSHR
 *    occupancy, NoC flits, produce-buffer depth...) are sampled every
 *    `sample_interval` cycles. Sampling piggybacks on event execution --
 *    the EventQueue invokes the tracer when simulated time advances -- so
 *    tracing never schedules events and never changes simulation behavior.
 *
 *  - Stall attribution: wait cycles bucketed by cause (queue-full,
 *    queue-empty, TLB-miss, DRAM, NoC backpressure...), summarized in a
 *    post-run report.
 *
 * Export formats: Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing; one trace "microsecond" = one simulated cycle) and a
 * compact CSV for the time-series. Tracing is off by default: with no
 * tracer attached every instrumentation site is a single null-pointer
 * check, and an attached-but-disabled tracer adds one boolean check.
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serial.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace maple::trace {

/** Coarse component category carried on every event ("cat" in the JSON). */
enum class Category : std::uint8_t { Maple, Cache, Noc, Core, Mem, Os, kCount };
const char *categoryName(Category c);

/** Cause buckets for the post-run stall-attribution report. */
enum class StallCause : std::uint8_t {
    QueueFull,      ///< produce waited on a full MAPLE queue
    QueueEmpty,     ///< consume waited on an empty MAPLE queue
    ProduceBuffer,  ///< produce waited on a full produce buffer
    TlbMiss,        ///< translation waited on a page-table walk / fault
    Dram,           ///< waited on a memory fetch (DRAM or LLC round trip)
    NocBackpressure,///< packet waited on a busy mesh link
    // Injected-fault buckets (src/fault): the attribution report separates
    // latency the FaultPlan inserted from organic latency of the same kind.
    FaultNoc,       ///< injected transient NoC link stall
    FaultDram,      ///< injected DRAM latency spike
    FaultTlb,       ///< injected device-TLB miss storm (forced re-walk)
    FaultMmio,      ///< injected delayed MMIO response
    FaultRecovery,  ///< hard-fault handling: quiesce/reset/replay downtime
    kCount
};
const char *stallCauseName(StallCause c);

struct TraceConfig {
    bool enabled = false;
    std::string json_path;            ///< Chrome trace JSON ("" = don't write)
    std::string csv_path;             ///< time-series CSV ("" = don't write)
    sim::Cycle sample_interval = 1000;///< probe sampling cadence, in cycles
    std::size_t max_events = 1u << 22;///< events beyond this are counted, not stored
    bool report_to_stderr = true;     ///< print the stall report on write()

    /**
     * Overlay environment knobs: MAPLE_TRACE=<json path> enables tracing,
     * MAPLE_TRACE_CSV=<csv path> and MAPLE_TRACE_INTERVAL=<cycles> refine it.
     * This is how every bench and example grows a trace knob without
     * per-binary plumbing (soc::Soc calls this on its config).
     */
    void mergeEnv();
};

class TraceManager {
  public:
    using TrackId = std::uint32_t;
    using LaneGroupId = std::uint32_t;
    static constexpr std::uint32_t kNone = 0xffffffffu;

    /** Handle for a span on a lane group (endLane() closes it). */
    struct Span {
        TrackId tid = kNone;
        sim::Cycle start = 0;
        bool valid() const { return tid != kNone; }
    };

    /** Construct and attach to @p eq; detaches in the destructor. */
    TraceManager(sim::EventQueue &eq, TraceConfig cfg);
    ~TraceManager();

    TraceManager(const TraceManager &) = delete;
    TraceManager &operator=(const TraceManager &) = delete;

    /** Runtime toggle; instrumentation sites check this via active(). */
    bool enabled() const { return enabled_; }
    void setEnabled(bool e) { enabled_ = e; }

    const TraceConfig &config() const { return cfg_; }

    /// @name Tracks and spans
    /// @{

    /** A fixed track for a serialized agent (spans obey stack discipline). */
    TrackId track(const std::string &name);

    /** A lane group for a concurrent agent (lanes allocated per span). */
    LaneGroupId laneGroup(const std::string &base);

    /** Open a span on a fixed track. @p name must be a string literal. */
    void begin(TrackId t, const char *name, Category cat);

    /** Close the innermost open span on @p t (emits a complete event). */
    void end(TrackId t);

    /**
     * Emit a complete event [@p start, now] on a fixed track without the
     * begin/end stack: for conditional sub-spans whose duration is only
     * known afterwards (e.g. a TLB walk inside a load).
     */
    void complete(TrackId t, const char *name, Category cat, sim::Cycle start);

    /** Zero-duration marker on @p t. */
    void instant(TrackId t, const char *name, Category cat);

    /** Open a span on the lowest free lane of @p g. */
    Span beginLane(LaneGroupId g, const char *name, Category cat);

    /** Close a lane span (emits a complete event, frees the lane). */
    void endLane(const Span &s);

    /// @}

    /// @name Periodic time-series sampling
    /// @{

    /** Register a probe sampled every sample_interval cycles. */
    void addProbe(const std::string &name, std::function<double()> probe);

    /** Number of sample rows recorded so far. */
    std::size_t sampleRows() const { return sample_times_.size(); }

    /// @}

    /// @name Stall attribution
    /// @{
    void attributeStall(StallCause c, sim::Cycle cycles)
    {
        stall_cycles_[static_cast<std::size_t>(c)] += cycles;
    }
    std::uint64_t stallCycles(StallCause c) const
    {
        return stall_cycles_[static_cast<std::size_t>(c)];
    }
    /** Human-readable post-run report (cycles and share per cause). */
    std::string stallReport() const;
    /// @}

    /// @name Introspection (tests, reports)
    /// @{
    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t droppedEvents() const { return dropped_; }
    /// @}

    /// @name Export
    /// @{
    void writeJson(std::ostream &os) const;
    void writeCsv(std::ostream &os) const;

    /**
     * Write the configured output files (idempotent). Repeated writes to the
     * same path within one process get a ".N" suffix instead of overwriting,
     * so multi-SoC benches keep one trace per run.
     */
    void write();
    /// @}

    /** EventQueue trampoline: drives sampling as simulated time advances. */
    static void onAdvance(TraceManager *t, sim::Cycle now) { t->advanceTo(now); }

    /**
     * Snapshot support (src/ckpt). Event/span names are string literals in
     * the live tracer; the snapshot carries them through a string table and
     * restore interns them into an owned pool, so a restored trace writes
     * byte-identical JSON/CSV. Probe *functions* are host-side and must
     * already be registered (in the same order) by the restoring Soc; only
     * their sampled values round-trip.
     */
    void saveState(ckpt::Sink &out) const;
    void loadState(ckpt::Source &in);

  private:
    struct Event {
        TrackId tid;
        const char *name;  ///< string literal (never owned)
        Category cat;
        bool is_instant;
        sim::Cycle ts;
        sim::Cycle dur;
    };

    struct OpenSpan {
        const char *name;
        Category cat;
        sim::Cycle start;
    };

    struct Track {
        std::string name;
        std::vector<OpenSpan> stack;  ///< fixed-track begin/end nesting
        bool lane_busy = false;       ///< lane-group occupancy
    };

    struct LaneGroup {
        std::string base;
        std::vector<TrackId> lanes;
    };

    struct Probe {
        std::string name;
        std::function<double()> fn;
        std::vector<double> values;  ///< aligned with sample_times_
    };

    void record(const Event &ev);
    void advanceTo(sim::Cycle now);
    void sampleAt(sim::Cycle ts);

    sim::EventQueue &eq_;
    TraceConfig cfg_;
    bool enabled_ = true;
    bool written_ = false;

    std::vector<Track> tracks_;
    std::vector<LaneGroup> groups_;
    std::vector<Event> events_;
    std::uint64_t dropped_ = 0;

    std::vector<Probe> probes_;
    std::vector<sim::Cycle> sample_times_;
    sim::Cycle next_sample_;

    /** Names interned by loadState() (stable addresses, owned). */
    std::deque<std::string> interned_names_;

    std::array<std::uint64_t, static_cast<std::size_t>(StallCause::kCount)>
        stall_cycles_{};
};

/**
 * Scope guard for a lane span inside a coroutine: opens the span on
 * construction (no-op when @p t is null or tracing is off) and closes it
 * when the coroutine body finishes, surviving any number of co_awaits in
 * between. Move-only so a span can be handed across helper frames.
 */
class LaneSpan {
  public:
    LaneSpan() = default;

    LaneSpan(TraceManager *t, TraceManager::LaneGroupId g, const char *name,
             Category cat)
        : t_(t)
    {
        if (t_ && g != TraceManager::kNone)
            span_ = t_->beginLane(g, name, cat);
        else
            t_ = nullptr;
    }

    LaneSpan(LaneSpan &&other) noexcept
        : t_(std::exchange(other.t_, nullptr)), span_(other.span_)
    {
    }

    LaneSpan &
    operator=(LaneSpan &&other) noexcept
    {
        if (this != &other) {
            close();
            t_ = std::exchange(other.t_, nullptr);
            span_ = other.span_;
        }
        return *this;
    }

    LaneSpan(const LaneSpan &) = delete;
    LaneSpan &operator=(const LaneSpan &) = delete;
    ~LaneSpan() { close(); }

    void
    close()
    {
        if (t_) {
            t_->endLane(span_);
            t_ = nullptr;
        }
    }

  private:
    TraceManager *t_ = nullptr;
    TraceManager::Span span_{};
};

/**
 * The instrumentation fast path: null when tracing is off. Every hook in the
 * hot components is written as
 *
 *     if (trace::TraceManager *t = trace::active(eq_)) { ... }
 *
 * which costs one pointer load + compare when no tracer is attached.
 */
inline TraceManager *
active(const sim::EventQueue &eq)
{
    TraceManager *t = eq.tracer();
    return (t && t->enabled()) ? t : nullptr;
}

}  // namespace maple::trace
