#include "mem/cache.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "sim/log.hpp"

namespace maple::mem {

Cache::Cache(sim::EventQueue &eq, CacheParams params, Port &downstream)
    : eq_(eq), params_(std::move(params)), downstream_(downstream),
      stats_(params_.name)
{
    MAPLE_ASSERT(params_.assoc > 0 && params_.size_bytes > 0);
    MAPLE_ASSERT(params_.size_bytes % (params_.assoc * kLineSize) == 0,
                 "cache size must be a multiple of assoc * line size");
    num_sets_ = params_.size_bytes / (params_.assoc * kLineSize);
    MAPLE_ASSERT((num_sets_ & (num_sets_ - 1)) == 0, "set count must be a power of two");
    sets_.assign(num_sets_, std::vector<Way>(params_.assoc));
    recent_inv_.fill(sim::kBadAddr);
}

void
Cache::attachCoherence(CoherenceFabric &fabric)
{
    MAPLE_ASSERT(!fabric_, "attachCoherence called twice");
    MAPLE_ASSERT(mshrs_.empty(), "attachCoherence with traffic in flight");
    fabric_ = &fabric;
    coh_id_ = fabric.registerCache(*this);
}

trace::TraceManager *
Cache::tracer()
{
    trace::TraceManager *t = trace::active(eq_);
    if (t && tr_miss_ == trace::TraceManager::kNone)
        tr_miss_ = t->laneGroup(params_.name + ".miss");
    return t;
}

size_t
Cache::setIndex(sim::Addr line) const
{
    return static_cast<size_t>((line >> kLineShift) & (num_sets_ - 1));
}

Cache::Way *
Cache::lookup(sim::Addr line)
{
    for (Way &w : sets_[setIndex(line)]) {
        if (w.valid && w.tag == line)
            return &w;
    }
    return nullptr;
}

const Cache::Way *
Cache::lookupConst(sim::Addr line) const
{
    for (const Way &w : sets_[setIndex(line)]) {
        if (w.valid && w.tag == line)
            return &w;
    }
    return nullptr;
}

void
Cache::touch(Way &way)
{
    way.lru = lru_clock_++;
}

Cache::Way &
Cache::selectVictim(size_t set)
{
    Way *victim = &sets_[set][0];
    for (Way &w : sets_[set]) {
        if (!w.valid)
            return w;
        if (w.lru < victim->lru)
            victim = &w;
    }
    return *victim;
}

Cache::Way &
Cache::selectVictimCoherent(size_t set)
{
    Way *victim = nullptr;
    for (Way &w : sets_[set]) {
        if (!w.valid)
            return w;
        // A line mid-upgrade (SM) must not be ripped out under its pending
        // GetM: the directory would grant a header-only upgrade to a copy
        // that no longer exists.
        if (tstate_.count(w.tag))
            continue;
        if (!victim || w.lru < victim->lru)
            victim = &w;
    }
    if (!victim) {
        // Every way of the set is mid-upgrade (needs assoc concurrent SM
        // transactions landing in one set): fall back to plain LRU. The
        // displaced upgrade finds its line gone and installs fresh, which
        // stays protocol-consistent (only the data transfer is under-billed).
        victim = &sets_[set][0];
        for (Way &w : sets_[set]) {
            if (w.lru < victim->lru)
                victim = &w;
        }
    }
    return *victim;
}

bool
Cache::probe(sim::Addr paddr) const
{
    return lookupConst(lineBase(paddr)) != nullptr;
}

EccOutcome
Cache::resilCheckHit(Way &w, const MemRequest &req, sim::Addr line)
{
    if (!resil_ || w.poisoned)
        return EccOutcome::Clean;  // already-poisoned ways skip the draw
    EccOutcome o =
        resil_->check(resil_cls_, req.cls, resil_st_, line, params_.tile);
    if (o == EccOutcome::Uncorrectable)
        w.poisoned = true;
    return o;
}

bool
Cache::resilShouldContain(const MemRequest &req) const
{
    return resil_l1_ && resil_ && resil_->canContain() &&
           req.kind != AccessKind::Prefetch &&
           (req.cls == RequesterClass::Core || req.cls == RequesterClass::Ptw);
}

void
Cache::resilDropLine(sim::Addr line)
{
    Way *w = lookup(line);
    if (!w)
        return;
    if (fabric_ && w->coh != MsiState::I) {
        if (CoherenceChecker *ck = checker())
            ck->onRelease(coh_id_, line);
        noteInvalidated(line);
    }
    *w = Way{};
}

void
Cache::invalidateAll()
{
    for (auto &set : sets_) {
        for (Way &w : set) {
            if (!w.valid) {
                w = Way{};
                continue;
            }
            MAPLE_CHECK(!w.dirty && w.coh != MsiState::M, sim::FatalError,
                        "%s: invalidateAll would silently drop modified line "
                        "0x%llx -- call flushAll() first",
                        params_.name.c_str(), (unsigned long long)w.tag);
            if (fabric_ && w.coh != MsiState::I) {
                if (CoherenceChecker *ck = checker())
                    ck->onRelease(coh_id_, w.tag);
            }
            w = Way{};
        }
    }
}

sim::Task<void>
Cache::flushAll()
{
    for (auto &set : sets_) {
        for (Way &w : set) {
            if (!w.valid) {
                w = Way{};
                continue;
            }
            sim::Addr line = w.tag;
            bool modified = w.dirty || w.coh == MsiState::M;
            bool held = fabric_ && w.coh != MsiState::I;
            if (resil_ && w.poisoned && modified)
                resil_->markBackingPoisoned(line);
            w = Way{};  // release the way before any suspension
            if (modified) {
                stats_.counter("writebacks").inc();
                MemRequest wb =
                    MemRequest::make(eq_, RequesterClass::Core, params_.tile,
                                     line, kLineSize, AccessKind::Write);
                if (fabric_) {
                    if (CoherenceChecker *ck = checker())
                        ck->onRelease(coh_id_, line);
                    co_await fabric_->putM(coh_id_, wb, line);
                } else {
                    co_await downstream_.request(wb);
                }
            } else if (held) {
                // Clean coherent copy: silent release, like an S eviction.
                if (CoherenceChecker *ck = checker())
                    ck->onRelease(coh_id_, line);
            }
        }
    }
}

void
Cache::prefetch(sim::Addr paddr)
{
    sim::spawnDetached(eq_,
                       request(MemRequest::make(eq_, RequesterClass::Prefetch,
                                                params_.tile, lineBase(paddr),
                                                kLineSize, AccessKind::Prefetch)));
}

sim::Task<void>
Cache::request(MemRequest req)
{
    MAPLE_ASSERT(req.size > 0);
    sim::Addr first = lineBase(req.paddr);
    sim::Addr last = lineBase(req.paddr + req.size - 1);
    for (sim::Addr line = first; line <= last; line += kLineSize) {
        if (fabric_)
            co_await accessLineCoherent(req, line);
        else
            co_await accessLine(req, line);
    }
}

sim::Task<void>
Cache::accessLine(MemRequest req, sim::Addr line)
{
    co_await sim::delay(eq_, params_.hit_latency);

    bool demand = req.kind != AccessKind::Prefetch;
    bool counted = false;
    while (true) {
        if (Way *w = lookup(line)) {
            if (resilCheckHit(*w, req, line) == EccOutcome::Corrected) {
                // Correction bubble; the way can be evicted across the wait,
                // so retry the lookup from scratch.
                co_await sim::delay(eq_, resil_->correctPenalty());
                continue;
            }
            // An LLC-role cache also serves poison recorded against the
            // backing store: recalled dirty data reaches it via detached
            // metadata-free writebacks, so the poison rides the side table.
            bool poisoned =
                w->poisoned ||
                (resil_ && !resil_l1_ && resil_->backingPoisoned(line));
            if (poisoned && demand) {
                if (resilShouldContain(req)) {
                    // Machine check: flush the line's holders, retire the
                    // page, then retry -- the refill returns repaired data.
                    co_await resil_->contain(
                        line, params_.tile,
                        poisonCause(req.meta, resil_cls_));
                    if (req.meta)
                        req.meta->poison = false;
                    continue;
                }
                if (req.meta) {
                    req.meta->poison = true;
                    req.meta->fault_tags |= fault::faultClassBit(resil_cls_);
                }
            }
            touch(*w);
            if (req.kind == AccessKind::Write)
                w->dirty = true;
            if (!counted)
                stats_.counter(demand ? "demand_hits" : "prefetch_hits").inc();
            co_return;
        }
        if (!counted) {
            counted = true;
            stats_.counter(demand ? "demand_misses" : "prefetch_misses").inc();
        }

        bool dropped = false;
        co_await handleMiss(req, line, dropped);
        if (dropped)
            co_return;

        // The fill installed the line; a concurrent eviction between
        // resumptions is possible but benign for a timing model -- treat it
        // as present.
        if (req.kind == AccessKind::Write) {
            if (Way *w = lookup(line))
                w->dirty = true;
        }
        if (!resil_)
            co_return;
        // With resilience on, loop so the poison/ECC checks run against the
        // just-installed line: a DRAM-poisoned fill must not be served clean.
    }
}

void
Cache::noteInvalidated(sim::Addr line)
{
    recent_inv_[recent_inv_next_ % recent_inv_.size()] = line;
    ++recent_inv_next_;
}

sim::Task<void>
Cache::accessLineCoherent(MemRequest req, sim::Addr line)
{
    co_await sim::delay(eq_, params_.hit_latency);

    const bool demand = req.kind != AccessKind::Prefetch;
    const bool want_m = req.kind == AccessKind::Write;
    bool counted = false;

    // Retry from scratch after every suspension: an invalidation or
    // downgrade can land between any two resumptions, so nothing observed
    // before a wait survives it. Forward progress is guaranteed because a
    // fill is installed with the home's line lock held and the hit path
    // below completes synchronously upon resumption -- before any
    // later-cycle Inv can land.
    while (true) {
        if (Way *w = lookup(line); w && (!want_m || w->coh == MsiState::M)) {
            if (resilCheckHit(*w, req, line) == EccOutcome::Corrected) {
                // Correction bubble; an Inv can land across the wait, so
                // retry the lookup from scratch like any other resumption.
                co_await sim::delay(eq_, resil_->correctPenalty());
                continue;
            }
            if (w->poisoned && demand) {
                if (resilShouldContain(req)) {
                    // Machine check: the handler recalls every copy through
                    // the home directory and retires the page, so the retry
                    // refetches repaired data.
                    co_await resil_->contain(
                        line, params_.tile,
                        poisonCause(req.meta, resil_cls_));
                    if (req.meta)
                        req.meta->poison = false;
                    continue;
                }
                if (req.meta) {
                    req.meta->poison = true;
                    req.meta->fault_tags |= fault::faultClassBit(resil_cls_);
                }
            }
            touch(*w);
            if (want_m)
                w->dirty = true;
            if (!counted)
                stats_.counter(demand ? "demand_hits" : "prefetch_hits").inc();
            if (CoherenceChecker *ck = checker()) {
                if (req.kind == AccessKind::Read)
                    ck->onLoad(coh_id_, line);
                else if (req.kind == AccessKind::Write)
                    ck->onStore(coh_id_, line);
            }
            co_return;
        }
        if (!counted) {
            counted = true;
            stats_.counter(demand ? "demand_misses" : "prefetch_misses").inc();
            if (want_m && lookup(line))
                stats_.counter("upgrade_misses").inc();
            else if (std::find(recent_inv_.begin(), recent_inv_.end(), line) !=
                     recent_inv_.end())
                stats_.counter("coherence_misses").inc();
        }

        // Merge into an in-flight transaction for the same line, then
        // re-evaluate: the fill may have been S while we need M, or it may
        // already have been invalidated again.
        if (auto it = mshrs_.find(line); it != mshrs_.end()) {
            stats_.counter("mshr_merges").inc();
            sim::Signal fill = it->second;
            fault::ParkGuard park(eq_, "mshr_merge", params_.name);
            co_await fill;
            continue;
        }

        if (mshrs_.size() >= params_.mshrs) {
            if (req.kind == AccessKind::Prefetch) {
                stats_.counter("prefetch_drops").inc();
                co_return;
            }
            stats_.counter("mshr_stalls").inc();
            sim::Signal wait = mshr_wait_;
            {
                fault::ParkGuard park(eq_, "mshr_full", params_.name);
                co_await wait;
            }
            continue;
        }

        trace::LaneSpan span(tracer(), tr_miss_, "miss", trace::Category::Cache);
        sim::Signal fill_done;
        mshrs_.emplace(line, fill_done);
        tstate_[line] = lookup(line) ? TransientState::SM
                        : want_m     ? TransientState::IM
                                     : TransientState::IS;
        // The home directory runs the whole transaction and installs the
        // line into this cache (cohInstall) before this resumes.
        co_await fabric_->fetch(
            coh_id_,
            req.child(line, kLineSize,
                      want_m ? AccessKind::Write : AccessKind::Read),
            line, want_m);
        tstate_.erase(line);
        mshrs_.erase(line);
        wakeMshrWaiters();
        fill_done.set(sim::Unit{});
        if (req.kind == AccessKind::Prefetch) {
            stats_.counter("prefetch_fills").inc();
            co_return;
        }
    }
}

MsiState
Cache::cohTakeLine(sim::Addr line)
{
    stats_.counter("inv_received").inc();
    Way *w = lookup(line);
    if (!w)
        return MsiState::I;  // silently evicted, or our PutM is in flight
    MsiState prior = w->coh;
    // Poisoned dirty data travels home with the ack; the memory side of the
    // hierarchy tracks it in the backing-poison set (the recall writeback is
    // detached and carries no metadata).
    if (resil_ && w->poisoned && prior == MsiState::M)
        resil_->markBackingPoisoned(line);
    if (CoherenceChecker *ck = checker())
        ck->onRelease(coh_id_, line);
    noteInvalidated(line);
    *w = Way{};
    return prior;
}

MsiState
Cache::cohState(sim::Addr line) const
{
    const Way *w = lookupConst(line);
    return w ? w->coh : MsiState::I;
}

bool
Cache::cohDowngrade(sim::Addr line)
{
    Way *w = lookup(line);
    if (!w)
        return false;  // our PutM is in flight; the data is already traveling
    if (w->coh != MsiState::M)
        return false;
    if (resil_ && w->poisoned)
        resil_->markBackingPoisoned(line);  // dirty data goes home poisoned
    w->coh = MsiState::S;
    w->dirty = false;
    stats_.counter("downgrades").inc();
    if (CoherenceChecker *ck = checker())
        ck->onDowngrade(coh_id_, line);
    return true;
}

void
Cache::cohInstall(sim::Addr line, MsiState st, const MemRequest &req)
{
    CoherenceChecker *ck = checker();
    if (Way *w = lookup(line)) {
        // SM completing: write permission lands on the existing copy.
        MAPLE_ASSERT(w->coh == MsiState::S && st == MsiState::M,
                     "%s: unexpected in-place install on 0x%llx",
                     params_.name.c_str(), (unsigned long long)line);
        w->coh = MsiState::M;
        touch(*w);
        if (ck)
            ck->onUpgrade(coh_id_, line);
        return;
    }
    size_t set = setIndex(line);
    Way &victim = selectVictimCoherent(set);
    if (victim.valid) {
        stats_.counter("evictions").inc();
        if (ck)
            ck->onRelease(coh_id_, victim.tag);
        if (victim.coh == MsiState::M) {
            stats_.counter("writebacks").inc();
            if (resil_ && victim.poisoned)
                resil_->markBackingPoisoned(victim.tag);
            // The dirty victim goes home as a PutM; nobody waits on it, and
            // the home drops it as stale if the line was recalled first.
            // Detached traffic must not carry the requester's metadata
            // slot -- that pointer dies with the requester's coroutine
            // frame (poison already went home via markBackingPoisoned).
            MemRequest putm = req.child(victim.tag, kLineSize,
                                        AccessKind::Write);
            putm.meta = nullptr;
            sim::spawnDetached(eq_, fabric_->putM(coh_id_, putm, victim.tag));
        }
        // S victims evict silently; the home tolerates the stale sharer bit.
    }
    victim.tag = line;
    victim.valid = true;
    victim.dirty = false;
    victim.poisoned = resil_ && req.meta && req.meta->poison;
    victim.coh = st;
    touch(victim);
    if (ck)
        ck->onInstall(coh_id_, line, st);
}

sim::Task<void>
Cache::handleMiss(MemRequest req, sim::Addr line, bool &dropped)
{
    trace::LaneSpan span(tracer(), tr_miss_, "miss", trace::Category::Cache);

    // Merge into an in-flight fill for the same line.
    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        stats_.counter("mshr_merges").inc();
        sim::Signal fill = it->second;
        fault::ParkGuard park(eq_, "mshr_merge", params_.name);
        co_await fill;
        co_return;
    }

    // Wait for a free MSHR; prefetches are dropped instead of waiting.
    while (mshrs_.size() >= params_.mshrs) {
        if (req.kind == AccessKind::Prefetch) {
            stats_.counter("prefetch_drops").inc();
            dropped = true;
            co_return;
        }
        stats_.counter("mshr_stalls").inc();
        sim::Signal wait = mshr_wait_;
        {
            fault::ParkGuard park(eq_, "mshr_full", params_.name);
            co_await wait;
        }
        // Re-check everything after waking: the line may have been installed
        // or an MSHR for it allocated while we slept.
        if (lookup(line))
            co_return;
        if (auto it = mshrs_.find(line); it != mshrs_.end()) {
            sim::Signal fill = it->second;
            fault::ParkGuard park(eq_, "mshr_merge", params_.name);
            co_await fill;
            co_return;
        }
    }

    sim::Signal fill_done;
    mshrs_.emplace(line, fill_done);

    // The fill (and any writeback it triggers) keeps the requester's
    // identity so downstream stages attribute the traffic to its true
    // origin. Requests merged into this MSHR are attributed to the first
    // requester -- the one whose fill they ride.
    co_await downstream_.request(req.child(line, kLineSize, AccessKind::Read));

    size_t set = setIndex(line);
    Way &victim = selectVictim(set);
    if (victim.valid) {
        stats_.counter("evictions").inc();
        if (victim.dirty) {
            stats_.counter("writebacks").inc();
            if (resil_ && victim.poisoned)
                resil_->markBackingPoisoned(victim.tag);
            // Writeback consumes downstream bandwidth but nobody waits on
            // it, so it must not carry the requester's metadata slot: that
            // pointer dies with the requester's coroutine frame (poison
            // already went home via markBackingPoisoned above).
            MemRequest wb = req.child(victim.tag, kLineSize,
                                      AccessKind::Write);
            wb.meta = nullptr;
            sim::spawnDetached(eq_, downstream_.request(wb));
        }
    }
    victim.tag = line;
    victim.valid = true;
    victim.dirty = false;
    victim.poisoned = resil_ && req.meta && req.meta->poison;
    touch(victim);
    if (req.kind == AccessKind::Prefetch)
        stats_.counter("prefetch_fills").inc();

    mshrs_.erase(line);
    wakeMshrWaiters();
    fill_done.set(sim::Unit{});
}

void
Cache::wakeMshrWaiters()
{
    sim::Signal s = std::exchange(mshr_wait_, sim::Signal{});
    s.set(sim::Unit{});
}

}  // namespace maple::mem
