#include "mem/cache.hpp"

#include "fault/fault.hpp"
#include "sim/log.hpp"

namespace maple::mem {

Cache::Cache(sim::EventQueue &eq, CacheParams params, Port &downstream)
    : eq_(eq), params_(std::move(params)), downstream_(downstream),
      stats_(params_.name)
{
    MAPLE_ASSERT(params_.assoc > 0 && params_.size_bytes > 0);
    MAPLE_ASSERT(params_.size_bytes % (params_.assoc * kLineSize) == 0,
                 "cache size must be a multiple of assoc * line size");
    num_sets_ = params_.size_bytes / (params_.assoc * kLineSize);
    MAPLE_ASSERT((num_sets_ & (num_sets_ - 1)) == 0, "set count must be a power of two");
    sets_.assign(num_sets_, std::vector<Way>(params_.assoc));
}

trace::TraceManager *
Cache::tracer()
{
    trace::TraceManager *t = trace::active(eq_);
    if (t && tr_miss_ == trace::TraceManager::kNone)
        tr_miss_ = t->laneGroup(params_.name + ".miss");
    return t;
}

size_t
Cache::setIndex(sim::Addr line) const
{
    return static_cast<size_t>((line >> kLineShift) & (num_sets_ - 1));
}

Cache::Way *
Cache::lookup(sim::Addr line)
{
    for (Way &w : sets_[setIndex(line)]) {
        if (w.valid && w.tag == line)
            return &w;
    }
    return nullptr;
}

const Cache::Way *
Cache::lookupConst(sim::Addr line) const
{
    for (const Way &w : sets_[setIndex(line)]) {
        if (w.valid && w.tag == line)
            return &w;
    }
    return nullptr;
}

void
Cache::touch(Way &way)
{
    way.lru = lru_clock_++;
}

Cache::Way &
Cache::selectVictim(size_t set)
{
    Way *victim = &sets_[set][0];
    for (Way &w : sets_[set]) {
        if (!w.valid)
            return w;
        if (w.lru < victim->lru)
            victim = &w;
    }
    return *victim;
}

bool
Cache::probe(sim::Addr paddr) const
{
    return lookupConst(lineBase(paddr)) != nullptr;
}

void
Cache::invalidateAll()
{
    for (auto &set : sets_)
        for (Way &w : set)
            w = Way{};
}

void
Cache::prefetch(sim::Addr paddr)
{
    sim::spawnDetached(eq_,
                       request(MemRequest::make(eq_, RequesterClass::Prefetch,
                                                params_.tile, lineBase(paddr),
                                                kLineSize, AccessKind::Prefetch)));
}

sim::Task<void>
Cache::request(MemRequest req)
{
    MAPLE_ASSERT(req.size > 0);
    sim::Addr first = lineBase(req.paddr);
    sim::Addr last = lineBase(req.paddr + req.size - 1);
    for (sim::Addr line = first; line <= last; line += kLineSize)
        co_await accessLine(req, line);
}

sim::Task<void>
Cache::accessLine(MemRequest req, sim::Addr line)
{
    co_await sim::delay(eq_, params_.hit_latency);

    bool demand = req.kind != AccessKind::Prefetch;
    if (Way *w = lookup(line)) {
        touch(*w);
        if (req.kind == AccessKind::Write)
            w->dirty = true;
        stats_.counter(demand ? "demand_hits" : "prefetch_hits").inc();
        co_return;
    }
    stats_.counter(demand ? "demand_misses" : "prefetch_misses").inc();

    bool dropped = false;
    co_await handleMiss(req, line, dropped);
    if (dropped)
        co_return;

    // The fill installed the line; a concurrent eviction between resumptions
    // is possible but benign for a timing model -- treat it as present.
    if (req.kind == AccessKind::Write) {
        if (Way *w = lookup(line))
            w->dirty = true;
    }
}

sim::Task<void>
Cache::handleMiss(MemRequest req, sim::Addr line, bool &dropped)
{
    trace::LaneSpan span(tracer(), tr_miss_, "miss", trace::Category::Cache);

    // Merge into an in-flight fill for the same line.
    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        stats_.counter("mshr_merges").inc();
        sim::Signal fill = it->second;
        fault::ParkGuard park(eq_, "mshr_merge", params_.name);
        co_await fill;
        co_return;
    }

    // Wait for a free MSHR; prefetches are dropped instead of waiting.
    while (mshrs_.size() >= params_.mshrs) {
        if (req.kind == AccessKind::Prefetch) {
            stats_.counter("prefetch_drops").inc();
            dropped = true;
            co_return;
        }
        stats_.counter("mshr_stalls").inc();
        sim::Signal wait = mshr_wait_;
        {
            fault::ParkGuard park(eq_, "mshr_full", params_.name);
            co_await wait;
        }
        // Re-check everything after waking: the line may have been installed
        // or an MSHR for it allocated while we slept.
        if (lookup(line))
            co_return;
        if (auto it = mshrs_.find(line); it != mshrs_.end()) {
            sim::Signal fill = it->second;
            fault::ParkGuard park(eq_, "mshr_merge", params_.name);
            co_await fill;
            co_return;
        }
    }

    sim::Signal fill_done;
    mshrs_.emplace(line, fill_done);

    // The fill (and any writeback it triggers) keeps the requester's
    // identity so downstream stages attribute the traffic to its true
    // origin. Requests merged into this MSHR are attributed to the first
    // requester -- the one whose fill they ride.
    co_await downstream_.request(req.child(line, kLineSize, AccessKind::Read));

    size_t set = setIndex(line);
    Way &victim = selectVictim(set);
    if (victim.valid) {
        stats_.counter("evictions").inc();
        if (victim.dirty) {
            stats_.counter("writebacks").inc();
            // Writeback consumes downstream bandwidth but nobody waits on it.
            sim::spawnDetached(eq_, downstream_.request(
                req.child(victim.tag, kLineSize, AccessKind::Write)));
        }
    }
    victim.tag = line;
    victim.valid = true;
    victim.dirty = false;
    touch(victim);
    if (req.kind == AccessKind::Prefetch)
        stats_.counter("prefetch_fills").inc();

    mshrs_.erase(line);
    wakeMshrWaiters();
    fill_done.set(sim::Unit{});
}

void
Cache::wakeMshrWaiters()
{
    sim::Signal s = std::exchange(mshr_wait_, sim::Signal{});
    s.set(sim::Unit{});
}

}  // namespace maple::mem
