#include "mem/coherence.hpp"

#include <cstdlib>

namespace maple::mem {

const char *
coherenceModeName(CoherenceMode m)
{
    switch (m) {
    case CoherenceMode::None: return "none";
    case CoherenceMode::Msi: return "msi";
    }
    return "?";
}

std::optional<CoherenceMode>
parseCoherenceMode(std::string_view s)
{
    if (s == "none" || s == "off")
        return CoherenceMode::None;
    if (s == "msi")
        return CoherenceMode::Msi;
    return std::nullopt;
}

CoherenceMode
coherenceModeFromEnv(const char *env, CoherenceMode fallback)
{
    const char *v = std::getenv(env);
    if (!v || !*v)
        return fallback;
    auto m = parseCoherenceMode(v);
    if (!m)
        MAPLE_THROW(sim::ConfigError,
                    "%s: unknown coherence mode \"%s\" (expected none | msi)",
                    env, v);
    return *m;
}

const char *
msiStateName(MsiState s)
{
    switch (s) {
    case MsiState::I: return "I";
    case MsiState::S: return "S";
    case MsiState::M: return "M";
    }
    return "?";
}

const char *
cohMsgName(CohMsg m)
{
    switch (m) {
    case CohMsg::GetS: return "GetS";
    case CohMsg::GetM: return "GetM";
    case CohMsg::PutM: return "PutM";
    case CohMsg::Inv: return "Inv";
    case CohMsg::InvAck: return "InvAck";
    case CohMsg::FwdGetS: return "FwdGetS";
    case CohMsg::FwdGetM: return "FwdGetM";
    case CohMsg::Downgrade: return "Downgrade";
    case CohMsg::WbAck: return "WbAck";
    case CohMsg::Data: return "Data";
    case CohMsg::kCount: break;
    }
    return "?";
}

namespace {

unsigned
envUnsigned(const char *env, unsigned fallback)
{
    const char *v = std::getenv(env);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    unsigned long n = std::strtoul(v, &end, 10);
    if (end == v || *end != '\0' || n == 0)
        MAPLE_THROW(sim::ConfigError, "%s: expected a positive integer, got \"%s\"",
                    env, v);
    return static_cast<unsigned>(n);
}

}  // namespace

void
CoherenceConfig::mergeEnv()
{
    mode = coherenceModeFromEnv("MAPLE_COHERENCE", mode);
    if (const char *v = std::getenv("MAPLE_COH_CHECK"); v && *v)
        checker = (std::string_view(v) != "0");
    dir_entries = envUnsigned("MAPLE_COH_DIR_ENTRIES", dir_entries);
    dir_assoc = envUnsigned("MAPLE_COH_DIR_ASSOC", dir_assoc);
    max_sharers = envUnsigned("MAPLE_COH_MAX_SHARERS", max_sharers);
}

unsigned
CoherenceChecker::registerCache(std::string name)
{
    names_.push_back(std::move(name));
    return static_cast<unsigned>(names_.size() - 1);
}

const char *
CoherenceChecker::cacheName(unsigned cache) const
{
    return cache < names_.size() ? names_[cache].c_str() : "?";
}

std::vector<std::pair<unsigned, std::uint64_t>>::iterator
CoherenceChecker::findHolder(LineShadow &sh, unsigned cache)
{
    for (auto it = sh.holders.begin(); it != sh.holders.end(); ++it)
        if (it->first == cache)
            return it;
    return sh.holders.end();
}

void
CoherenceChecker::onInstall(unsigned cache, sim::Addr line, MsiState st)
{
    LineShadow &sh = shadow(line);
    MAPLE_CHECK(findHolder(sh, cache) == sh.holders.end(), CoherenceError,
                "%s installs line 0x%llx it already holds", cacheName(cache),
                (unsigned long long)line);
    if (st == MsiState::M) {
        MAPLE_CHECK(sh.holders.empty(), CoherenceError,
                    "%s installs line 0x%llx in M with %zu other holders "
                    "alive (first: %s) — missed invalidation",
                    cacheName(cache), (unsigned long long)line,
                    sh.holders.size(), cacheName(sh.holders.front().first));
        sh.owner = static_cast<int>(cache);
    } else {
        MAPLE_CHECK(st == MsiState::S, CoherenceError,
                    "install of line 0x%llx in state %s", (unsigned long long)line,
                    msiStateName(st));
        MAPLE_CHECK(sh.owner < 0, CoherenceError,
                    "%s installs line 0x%llx in S while %s owns it in M — "
                    "missed downgrade",
                    cacheName(cache), (unsigned long long)line,
                    cacheName(static_cast<unsigned>(sh.owner)));
    }
    sh.holders.emplace_back(cache, sh.version);
}

void
CoherenceChecker::onUpgrade(unsigned cache, sim::Addr line)
{
    LineShadow &sh = shadow(line);
    auto it = findHolder(sh, cache);
    MAPLE_CHECK(it != sh.holders.end(), CoherenceError,
                "%s upgrades line 0x%llx it does not hold", cacheName(cache),
                (unsigned long long)line);
    MAPLE_CHECK(sh.holders.size() == 1, CoherenceError,
                "%s upgrades line 0x%llx to M with %zu holders alive — "
                "missed invalidation",
                cacheName(cache), (unsigned long long)line, sh.holders.size());
    MAPLE_CHECK(sh.owner < 0, CoherenceError,
                "%s upgrades line 0x%llx already owned by %s", cacheName(cache),
                (unsigned long long)line,
                cacheName(static_cast<unsigned>(sh.owner)));
    // An upgrade grants write permission to the *existing* copy; that copy
    // must still be current or the grant publishes a stale line.
    MAPLE_CHECK(it->second == sh.version, CoherenceError,
                "%s upgrades a stale copy of line 0x%llx (has version %llu, "
                "current %llu)",
                cacheName(cache), (unsigned long long)line,
                (unsigned long long)it->second, (unsigned long long)sh.version);
    sh.owner = static_cast<int>(cache);
}

void
CoherenceChecker::onDowngrade(unsigned cache, sim::Addr line)
{
    LineShadow &sh = shadow(line);
    MAPLE_CHECK(sh.owner == static_cast<int>(cache), CoherenceError,
                "%s downgrades line 0x%llx it does not own", cacheName(cache),
                (unsigned long long)line);
    sh.owner = -1;
}

void
CoherenceChecker::onRelease(unsigned cache, sim::Addr line)
{
    LineShadow &sh = shadow(line);
    auto it = findHolder(sh, cache);
    MAPLE_CHECK(it != sh.holders.end(), CoherenceError,
                "%s releases line 0x%llx it does not hold", cacheName(cache),
                (unsigned long long)line);
    sh.holders.erase(it);
    if (sh.owner == static_cast<int>(cache))
        sh.owner = -1;
}

void
CoherenceChecker::onLoad(unsigned cache, sim::Addr line)
{
    LineShadow &sh = shadow(line);
    auto it = findHolder(sh, cache);
    MAPLE_CHECK(it != sh.holders.end(), CoherenceError,
                "%s loads from line 0x%llx it does not hold", cacheName(cache),
                (unsigned long long)line);
    MAPLE_CHECK(it->second == sh.version, CoherenceError,
                "STALE READ: %s loads line 0x%llx at version %llu but the "
                "line is at version %llu — a store was never invalidated "
                "through to this cache",
                cacheName(cache), (unsigned long long)line,
                (unsigned long long)it->second, (unsigned long long)sh.version);
    ++loads_checked_;
}

void
CoherenceChecker::onStore(unsigned cache, sim::Addr line)
{
    LineShadow &sh = shadow(line);
    auto it = findHolder(sh, cache);
    MAPLE_CHECK(it != sh.holders.end(), CoherenceError,
                "%s stores to line 0x%llx it does not hold", cacheName(cache),
                (unsigned long long)line);
    MAPLE_CHECK(sh.owner == static_cast<int>(cache), CoherenceError,
                "%s stores to line 0x%llx without owning it in M (owner: %s)",
                cacheName(cache), (unsigned long long)line,
                sh.owner < 0 ? "none"
                             : cacheName(static_cast<unsigned>(sh.owner)));
    MAPLE_CHECK(sh.holders.size() == 1, CoherenceError,
                "%s stores to line 0x%llx with %zu holders alive — SWMR "
                "violated",
                cacheName(cache), (unsigned long long)line, sh.holders.size());
    ++sh.version;
    it->second = sh.version;
    ++stores_checked_;
}

void
CoherenceChecker::onDmaRead(sim::Addr line)
{
    // A coherent DMA read (MAPLE consume, core uncached atomic load) goes
    // through the home slice, which recalled/downgraded any M copy first:
    // legal in any state, nothing to assert — but it must not observe an
    // outstanding owner, which would mean the recall was skipped.
    LineShadow &sh = shadow(line);
    MAPLE_CHECK(sh.owner < 0, CoherenceError,
                "coherent DMA read of line 0x%llx while %s owns it in M — "
                "recall was skipped",
                (unsigned long long)line,
                cacheName(static_cast<unsigned>(sh.owner)));
    ++loads_checked_;
}

void
CoherenceChecker::onDmaWrite(sim::Addr line)
{
    LineShadow &sh = shadow(line);
    MAPLE_CHECK(sh.holders.empty(), CoherenceError,
                "coherent DMA write to line 0x%llx with %zu cached copies "
                "alive (first: %s) — invalidation was skipped",
                (unsigned long long)line, sh.holders.size(),
                sh.holders.empty() ? "?" : cacheName(sh.holders.front().first));
    ++sh.version;
    ++stores_checked_;
}

void
CoherenceChecker::reset()
{
    lines_.clear();
}

void
CoherenceChecker::seedHolder(unsigned cache, sim::Addr line, MsiState st)
{
    LineShadow &sh = shadow(line);
    if (st == MsiState::M)
        sh.owner = static_cast<int>(cache);
    sh.holders.emplace_back(cache, sh.version);
}

}  // namespace maple::mem
