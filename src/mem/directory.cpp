#include "mem/directory.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "mem/resil.hpp"
#include "sim/log.hpp"

namespace maple::mem {

namespace {

/** Sender timeout before a dropped protocol message is retransmitted. */
constexpr sim::Cycle kDropRetransmitTimeout = 256;

bool
contains(const std::vector<unsigned> &v, unsigned x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

Directory::Directory(sim::EventQueue &eq, const CoherenceConfig &cfg,
                     CoherenceFabric &fabric, std::string name,
                     sim::TileId tile, Port &slice_llc)
    : eq_(eq), cfg_(cfg), fabric_(fabric), name_(std::move(name)), tile_(tile),
      slice_llc_(slice_llc), stats_(name_)
{
    MAPLE_ASSERT(cfg_.dir_entries > 0 && cfg_.dir_assoc > 0);
    num_sets_ = std::max<std::size_t>(1, cfg_.dir_entries / cfg_.dir_assoc);
    // Power-of-two set count so setOf() is a mask, mirroring mem::Cache.
    while (num_sets_ & (num_sets_ - 1))
        ++num_sets_;
    sets_.assign(num_sets_, std::vector<Entry>(cfg_.dir_assoc));
}

std::size_t
Directory::setOf(sim::Addr line) const
{
    // Slice-interleaving consumes the low line bits; fold them out so a
    // slice's sets are used uniformly instead of striding by slice count.
    return static_cast<std::size_t>(
        (line >> kLineShift) / std::max(1u, fabric_.numSlices()) &
        (num_sets_ - 1));
}

Directory::Entry *
Directory::find(sim::Addr line)
{
    for (Entry &e : sets_[setOf(line)]) {
        if (e.valid && e.tag == line)
            return &e;
    }
    return nullptr;
}

sim::Task<void>
Directory::lock(sim::Addr line)
{
    while (true) {
        auto it = busy_.find(line);
        if (it == busy_.end()) {
            busy_.emplace(line, sim::Signal{});
            co_return;
        }
        stats_.counter("busy_waits").inc();
        sim::Signal s = it->second;
        fault::ParkGuard park(eq_, "dir_busy", name_);
        co_await s;
    }
}

bool
Directory::tryLock(sim::Addr line)
{
    if (busy_.count(line))
        return false;
    busy_.emplace(line, sim::Signal{});
    return true;
}

void
Directory::unlock(sim::Addr line)
{
    auto it = busy_.find(line);
    MAPLE_ASSERT(it != busy_.end(), "unlock of an unlocked directory line");
    sim::Signal s = it->second;
    busy_.erase(it);
    s.set(sim::Unit{});
}

void
Directory::writebackToSlice(sim::Addr line)
{
    // Dirty data recalled from an owner updates the LLC slice off the
    // critical path: the response to the requester does not wait for it.
    sim::spawnDetached(
        eq_, slice_llc_.request(MemRequest::make(eq_, RequesterClass::Coherence,
                                                 tile_, line, kLineSize,
                                                 AccessKind::Write)));
}

void
Directory::freeIfUntracked(Entry &e)
{
    if (e.valid && e.owner < 0 && e.sharers.empty()) {
        e.valid = false;
        --live_entries_;
    }
}

void
Directory::noteStalePutM(sim::Addr line, unsigned cache)
{
    stale_putms_[line].push_back(cache);
}

bool
Directory::consumeStalePutM(sim::Addr line, unsigned cache)
{
    auto it = stale_putms_.find(line);
    if (it == stale_putms_.end())
        return false;
    auto &v = it->second;
    auto pos = std::find(v.begin(), v.end(), cache);
    if (pos == v.end())
        return false;
    v.erase(pos);
    if (v.empty())
        stale_putms_.erase(it);
    return true;
}

sim::Task<void>
Directory::invOne(unsigned cache, sim::Addr line)
{
    stats_.counter("invalidations").inc();
    CoherentCache &c = fabric_.cacheById(cache);
    co_await fabric_.message(tile_, c.cohTile(), CohMsg::Inv, 0,
                             RequesterClass::Coherence);
    MsiState prior = c.cohTakeLine(line);
    // A sharer never holds M, but a stale sharer bit can point at a cache
    // that re-acquired the line as owner in an earlier serialized
    // transaction removing it from this vector -- by construction that
    // cannot happen while we hold the line lock, so prior is S or I here.
    co_await fabric_.message(c.cohTile(), tile_, CohMsg::InvAck,
                             prior == MsiState::M ? unsigned(kLineSize) : 0,
                             RequesterClass::Coherence);
    if (prior == MsiState::M)
        writebackToSlice(line);
}

sim::Task<void>
Directory::invalidateSharers(Entry &e, sim::Addr line)
{
    if (e.sharers.empty())
        co_return;
    std::vector<unsigned> targets = std::move(e.sharers);
    e.sharers.clear();
    // All Inv legs fly in parallel; the transaction proceeds when the last
    // ack is home.
    auto remaining = std::make_shared<unsigned>(
        static_cast<unsigned>(targets.size()));
    sim::Signal all_acked;
    for (unsigned t : targets) {
        auto leg = [](Directory *self, unsigned cache, sim::Addr ln,
                      std::shared_ptr<unsigned> left,
                      sim::Signal done) -> sim::Task<void> {
            co_await self->invOne(cache, ln);
            if (--*left == 0)
                done.set(sim::Unit{});
        };
        sim::spawnDetached(eq_, leg(this, t, line, remaining, all_acked));
    }
    fault::ParkGuard park(eq_, "dir_inv_acks", name_);
    co_await all_acked;
}

sim::Task<void>
Directory::recallOwner(Entry &e, sim::Addr line)
{
    stats_.counter("interventions").inc();
    stats_.counter("fwd_getm").inc();
    unsigned owner = static_cast<unsigned>(e.owner);
    CoherentCache &o = fabric_.cacheById(owner);
    e.owner = -1;
    co_await fabric_.message(tile_, o.cohTile(), CohMsg::FwdGetM, 0,
                             RequesterClass::Coherence);
    MsiState prior = o.cohTakeLine(line);
    // prior == I: the owner's PutM is still in flight (it will arrive
    // stale and must be ignored even if the cache re-owns the line by
    // then); the ack is header-only because the copy is already gone.
    if (prior == MsiState::I)
        noteStalePutM(line, owner);
    co_await fabric_.message(o.cohTile(), tile_, CohMsg::InvAck,
                             prior == MsiState::M ? unsigned(kLineSize) : 0,
                             RequesterClass::Coherence);
    if (prior == MsiState::M)
        writebackToSlice(line);
}

sim::Task<void>
Directory::downgradeOwner(Entry &e, sim::Addr line)
{
    stats_.counter("interventions").inc();
    stats_.counter("fwd_gets").inc();
    unsigned owner = static_cast<unsigned>(e.owner);
    CoherentCache &o = fabric_.cacheById(owner);
    e.owner = -1;
    co_await fabric_.message(tile_, o.cohTile(), CohMsg::FwdGetS, 0,
                             RequesterClass::Coherence);
    bool was_m = o.cohDowngrade(line);
    co_await fabric_.message(o.cohTile(), tile_, CohMsg::Downgrade,
                             was_m ? unsigned(kLineSize) : 0,
                             RequesterClass::Coherence);
    if (was_m) {
        writebackToSlice(line);
        if (!contains(e.sharers, owner))
            e.sharers.push_back(owner);
    } else if (o.cohState(line) == MsiState::I) {
        // The owner's copy was already gone (PutM in flight); it is not a
        // sharer, and its PutM must be dropped on arrival.
        noteStalePutM(line, owner);
    }
}

sim::Task<Directory::Entry *>
Directory::allocate(sim::Addr line)
{
    auto &set = sets_[setOf(line)];
    Entry *victim = nullptr;
    for (;;) {
        for (Entry &e : set) {
            if (!e.valid) {
                victim = &e;
                break;
            }
        }
        if (victim)
            break;
        // Eviction-forced invalidation. Only victims whose line lock is
        // free are candidates: we already hold @p line's lock and must
        // never *wait* for a second one (deadlock), so busy entries are
        // skipped and their lock is taken synchronously (tryLock cannot
        // fail after the scan -- both run without suspension). Under heavy
        // set pressure every way can be mid-transaction at once; holders
        // never await a contended lock themselves (they only tryLock), so
        // they finish in bounded time and polling until a way frees up is
        // deadlock-free. The set can change across the stall (a way freed,
        // or grabbed by another allocator), so each round re-scans from
        // scratch, invalid ways included.
        Entry *best = nullptr;
        for (Entry &e : set) {
            if (!busy_.count(e.tag) && (!best || e.lru < best->lru))
                best = &e;
        }
        if (!best) {
            stats_.counter("alloc_stalls").inc();
            fault::ParkGuard park(eq_, "dir_alloc", name_);
            co_await sim::delay(eq_, cfg_.dir_latency);
            continue;
        }
        bool locked = tryLock(best->tag);
        MAPLE_ASSERT(locked);
        sim::Addr victim_line = best->tag;
        stats_.counter("recalls").inc();
        if (best->owner >= 0)
            co_await recallOwner(*best, victim_line);
        co_await invalidateSharers(*best, victim_line);
        best->valid = false;
        --live_entries_;
        unlock(victim_line);
        victim = best;
        break;
    }
    victim->tag = line;
    victim->valid = true;
    victim->owner = -1;
    victim->sharers.clear();
    victim->lru = lru_clock_++;
    ++live_entries_;
    co_return victim;
}

sim::Cycle
Directory::resilCheckLookup(sim::Addr line, RequesterClass rc)
{
    ResilManager *r = fabric_.resil();
    if (!r)
        return 0;
    EccOutcome o = r->check(fault::FaultClass::BitFlipDir, rc,
                            ResilStructure::Directory, line, tile_);
    if (o == EccOutcome::Corrected)
        return r->correctPenalty();
    if (o == EccOutcome::Uncorrectable)
        corruptEntry(line);
    return 0;
}

void
Directory::corruptEntry(sim::Addr line)
{
    Entry *e = find(line);
    if (!e || e->owner >= 0 || e->sharers.size() >= cfg_.max_sharers)
        return;
    for (unsigned id = 0; id < fabric_.numCaches(); ++id) {
        if (!contains(e->sharers, id) &&
            fabric_.cacheById(id).cohState(line) == MsiState::I) {
            e->sharers.push_back(id);
            stats_.counter("corrupt_sharers").inc();
            return;
        }
    }
}

sim::Task<void>
Directory::recallLine(sim::Addr line)
{
    co_await lock(line);
    co_await sim::delay(eq_, cfg_.dir_latency);
    if (Entry *e = find(line)) {
        stats_.counter("resil_recalls").inc();
        if (e->owner >= 0)
            co_await recallOwner(*e, line);
        co_await invalidateSharers(*e, line);
        freeIfUntracked(*e);
    }
    unlock(line);
}

unsigned
Directory::scrubAudit(std::uint64_t slot)
{
    Entry &e = sets_[static_cast<std::size_t>(slot / cfg_.dir_assoc)]
                    [static_cast<std::size_t>(slot % cfg_.dir_assoc)];
    if (!e.valid || e.owner >= 0 || e.sharers.empty() || busy_.count(e.tag))
        return 0;
    unsigned repaired = 0;
    for (auto it = e.sharers.begin(); it != e.sharers.end();) {
        if (fabric_.cacheById(*it).cohState(e.tag) == MsiState::I) {
            it = e.sharers.erase(it);
            ++repaired;
        } else {
            ++it;
        }
    }
    if (repaired) {
        stats_.counter("scrub_repairs").inc(repaired);
        freeIfUntracked(e);
    }
    return repaired;
}

sim::Task<void>
Directory::fetchTransaction(unsigned requester, MemRequest req, sim::Addr line,
                            bool want_m)
{
    CoherentCache &c = fabric_.cacheById(requester);
    co_await lock(line);
    const sim::Cycle txn_start = eq_.now();
    co_await sim::delay(eq_, cfg_.dir_latency);
    if (sim::Cycle bubble = resilCheckLookup(line, req.cls))
        co_await sim::delay(eq_, bubble);
    stats_.counter(want_m ? "getm" : "gets").inc();

    Entry *e = find(line);
    bool data_needed = true;
    if (want_m) {
        if (e) {
            if (e->owner == static_cast<int>(requester)) {
                // Stale self-ownership: the requester's PutM for this line
                // is still in flight. Its copy is gone; a full fill is due,
                // and since the requester is about to be the *current*
                // owner again, that PutM must be ignored when it lands.
                e->owner = -1;
                noteStalePutM(line, requester);
            } else if (e->owner >= 0) {
                co_await recallOwner(*e, line);
            }
            bool was_sharer = false;
            for (auto it = e->sharers.begin(); it != e->sharers.end(); ++it) {
                if (*it == requester) {
                    e->sharers.erase(it);
                    was_sharer = true;
                    break;
                }
            }
            co_await invalidateSharers(*e, line);
            if (was_sharer) {
                if (c.cohState(line) == MsiState::S) {
                    // Upgrade grant: the requester's S copy becomes
                    // writable; the response is header-only.
                    stats_.counter("upgrades").inc();
                    data_needed = false;
                } else {
                    // Stale sharer bit: the S copy was silently evicted
                    // since, so the grant needs a full fill (and its LLC
                    // read) after all.
                    stats_.counter("stale_upgrades").inc();
                }
            }
        } else {
            e = co_await allocate(line);
        }
        if (data_needed) {
            co_await slice_llc_.request(
                req.child(line, kLineSize, AccessKind::Read));
        }
        e->owner = static_cast<int>(requester);
        e->sharers.clear();
    } else {
        if (e) {
            if (e->owner == static_cast<int>(requester)) {
                // Stale self-ownership, see above.
                e->owner = -1;
                noteStalePutM(line, requester);
            } else if (e->owner >= 0) {
                co_await downgradeOwner(*e, line);
            }
        } else {
            e = co_await allocate(line);
        }
        co_await slice_llc_.request(
            req.child(line, kLineSize, AccessKind::Read));
        if (!contains(e->sharers, requester)) {
            if (e->sharers.size() >= cfg_.max_sharers) {
                // Limited-pointer overflow: the oldest tracked sharer is
                // invalidated to make room.
                stats_.counter("sharer_overflows").inc();
                unsigned oldest = e->sharers.front();
                e->sharers.erase(e->sharers.begin());
                co_await invOne(oldest, line);
            }
            e->sharers.push_back(requester);
        }
    }
    e->lru = lru_clock_++;

    // Response transit and install inside the lock: a later transaction's
    // Inv for this line cannot overtake the fill.
    co_await fabric_.message(tile_, c.cohTile(), CohMsg::Data,
                             data_needed ? unsigned(kLineSize) : 0, req.cls);
    c.cohInstall(line, want_m ? MsiState::M : MsiState::S, req);
    stats_.histogram("txn_cycles", 32.0, 64)
        .sample(static_cast<double>(eq_.now() - txn_start));
    unlock(line);
}

sim::Task<void>
Directory::putMTransaction(unsigned requester, MemRequest req, sim::Addr line)
{
    CoherentCache &c = fabric_.cacheById(requester);
    co_await fabric_.message(c.cohTile(), tile_, CohMsg::PutM,
                             unsigned(kLineSize), req.cls);
    co_await lock(line);
    co_await sim::delay(eq_, cfg_.dir_latency);
    Entry *e = find(line);
    if (consumeStalePutM(line, requester)) {
        // Superseded in flight: the home already observed this eviction (a
        // recall or downgrade found the copy gone, or the cache's own
        // re-fetch cleared stale self-ownership). The requester may have
        // re-acquired M since, so `owner == requester` proves nothing here
        // -- clearing it would detach a live M copy (ABA).
        stats_.counter("putm_stale").inc();
    } else if (e && e->owner == static_cast<int>(requester)) {
        stats_.counter("putm").inc();
        e->owner = -1;
        freeIfUntracked(*e);
        // Detached: strip the sender's metadata slot (its coroutine frame
        // may be gone by the time the LLC write lands).
        MemRequest wb = req.child(line, kLineSize, AccessKind::Write);
        wb.meta = nullptr;
        sim::spawnDetached(eq_, slice_llc_.request(wb));
    } else {
        // The line's entry was evicted and re-allocated while this PutM
        // flew; every such path notes the PutM as superseded, so this is
        // defensive only. Drop it.
        stats_.counter("putm_stale").inc();
    }
    unlock(line);
    co_await fabric_.message(tile_, c.cohTile(), CohMsg::WbAck, 0,
                             RequesterClass::Coherence);
}

sim::Task<void>
Directory::dmaTransaction(MemRequest req, sim::Addr line, bool write)
{
    co_await lock(line);
    co_await sim::delay(eq_, cfg_.dir_latency);
    if (sim::Cycle bubble = resilCheckLookup(line, req.cls))
        co_await sim::delay(eq_, bubble);
    stats_.counter(write ? "dma_writes" : "dma_reads").inc();
    Entry *e = find(line);
    if (e) {
        if (write) {
            if (e->owner >= 0)
                co_await recallOwner(*e, line);
            co_await invalidateSharers(*e, line);
            freeIfUntracked(*e);
        } else if (e->owner >= 0) {
            co_await downgradeOwner(*e, line);
        }
    }
    if (CoherenceChecker *ck = fabric_.checker()) {
        if (write)
            ck->onDmaWrite(line);
        else if (req.kind != AccessKind::Prefetch)
            ck->onDmaRead(line);
    }
    co_await slice_llc_.request(req);
    unlock(line);
}

void
Directory::saveState(ckpt::Sink &out) const
{
    MAPLE_ASSERT(busy_.empty(), "snapshot with directory transactions live");
    MAPLE_ASSERT(stale_putms_.empty(), "snapshot with PutMs in flight");
    out.u64(num_sets_);
    out.u64(cfg_.dir_assoc);
    for (const auto &set : sets_) {
        for (const Entry &e : set) {
            out.u64(e.tag);
            out.b(e.valid);
            out.u64(static_cast<std::uint64_t>(e.owner + 1));
            out.u64(e.sharers.size());
            for (unsigned s : e.sharers)
                out.u32(s);
            out.u64(e.lru);
        }
    }
    out.u64(lru_clock_);
    out.u64(live_entries_);
    stats_.saveState(out);
}

void
Directory::loadState(ckpt::Source &in)
{
    MAPLE_ASSERT(busy_.empty(), "restore with directory transactions live");
    MAPLE_ASSERT(stale_putms_.empty(), "restore with PutMs in flight");
    std::uint64_t sets = in.u64();
    std::uint64_t assoc = in.u64();
    MAPLE_CHECK(sets == num_sets_ && assoc == cfg_.dir_assoc,
                ckpt::SnapshotError, "directory geometry mismatch (%s)",
                name_.c_str());
    for (auto &set : sets_) {
        for (Entry &e : set) {
            e.tag = in.u64();
            e.valid = in.b();
            e.owner = static_cast<int>(in.u64()) - 1;
            e.sharers.resize(in.u64());
            for (unsigned &s : e.sharers)
                s = in.u32();
            e.lru = in.u64();
        }
    }
    lru_clock_ = in.u64();
    live_entries_ = static_cast<unsigned>(in.u64());
    stats_.loadState(in);
}

CoherenceFabric::CoherenceFabric(sim::EventQueue &eq, CoherenceConfig cfg,
                                 noc::Mesh &mesh)
    : eq_(eq), cfg_(cfg), mesh_(mesh)
{
    MAPLE_ASSERT(cfg_.enabled(), "CoherenceFabric in mode none");
    if (cfg_.checker)
        checker_ = std::make_unique<CoherenceChecker>();
}

unsigned
CoherenceFabric::registerCache(CoherentCache &cache)
{
    caches_.push_back(&cache);
    unsigned id = static_cast<unsigned>(caches_.size() - 1);
    if (checker_) {
        unsigned cid = checker_->registerCache(cache.cohName());
        MAPLE_ASSERT(cid == id, "checker/fabric cache ids diverged");
    }
    return id;
}

Directory &
CoherenceFabric::addSlice(sim::TileId tile, Port &slice_llc)
{
    std::string name = "dir." + std::to_string(slices_.size());
    slices_.push_back(std::make_unique<Directory>(eq_, cfg_, *this,
                                                  std::move(name), tile,
                                                  slice_llc));
    return *slices_.back();
}

sim::Task<void>
CoherenceFabric::fetch(unsigned requester, MemRequest req, sim::Addr line,
                       bool want_m)
{
    Directory &d = *slices_[homeSlice(line)];
    CoherentCache &c = *caches_[requester];
    co_await message(c.cohTile(), d.tile(), want_m ? CohMsg::GetM : CohMsg::GetS,
                     0, req.cls);
    co_await d.fetchTransaction(requester, req, line, want_m);
}

sim::Task<void>
CoherenceFabric::putM(unsigned requester, MemRequest req, sim::Addr line)
{
    co_await slices_[homeSlice(line)]->putMTransaction(requester, req, line);
}

sim::Task<void>
CoherenceFabric::dmaLine(MemRequest req, sim::Addr line, bool write)
{
    Directory &d = *slices_[homeSlice(line)];
    co_await message(req.tile, d.tile(), write ? CohMsg::GetM : CohMsg::GetS,
                     write ? req.size : 0, req.cls);
    co_await d.dmaTransaction(req, line, write);
    co_await message(d.tile(), req.tile, CohMsg::Data, write ? 0 : req.size,
                     req.cls);
}

sim::Task<void>
CoherenceFabric::message(sim::TileId src, sim::TileId dst, CohMsg kind,
                         unsigned payload_bytes, RequesterClass cls)
{
    ++msg_counts_[static_cast<std::size_t>(kind)];
    unsigned flits = noc::flitsFor(payload_bytes, mesh_.params().flit_bytes);
    if (fault::FaultInjector *f = fault::active(eq_)) {
        if (sim::Cycle d = f->inject(fault::FaultClass::CohMsgDelay, cls)) {
            f->chargeCycles(fault::FaultClass::CohMsgDelay, d);
            co_await sim::delay(eq_, d);
        }
        if (f->inject(fault::FaultClass::CohMsgDrop, cls)) {
            // The lost copy still burns link bandwidth; the sender times
            // out and retransmits, so protocol liveness survives a drop --
            // the transaction's latency does not.
            co_await mesh_.transit(src, dst, flits, cls);
            f->chargeCycles(fault::FaultClass::CohMsgDrop,
                            kDropRetransmitTimeout);
            co_await sim::delay(eq_, kDropRetransmitTimeout);
        }
    }
    co_await mesh_.transit(src, dst, flits, cls);
}

std::uint64_t
CoherenceFabric::totalInvalidations() const
{
    std::uint64_t n = 0;
    for (const auto &s : slices_)
        n += s->stats().counterValue("invalidations");
    return n;
}

std::uint64_t
CoherenceFabric::totalInterventions() const
{
    std::uint64_t n = 0;
    for (const auto &s : slices_)
        n += s->stats().counterValue("interventions");
    return n;
}

void
CoherenceFabric::saveState(ckpt::Sink &out) const
{
    for (std::uint64_t c : msg_counts_)
        out.u64(c);
    out.u64(slices_.size());
    for (const auto &s : slices_)
        s->saveState(out);
}

void
CoherenceFabric::loadState(ckpt::Source &in)
{
    for (std::uint64_t &c : msg_counts_)
        c = in.u64();
    std::uint64_t n = in.u64();
    MAPLE_CHECK(n == slices_.size(), ckpt::SnapshotError,
                "coherence slice count mismatch in snapshot");
    for (auto &s : slices_)
        s->loadState(in);
}

sim::Task<void>
CoherentDmaPort::request(MemRequest req)
{
    MAPLE_ASSERT(req.size > 0);
    const bool write = req.kind == AccessKind::Write;
    // A core/PTW-class read that returns poison must machine-check, so make
    // sure a metadata slot exists for the poison to land in.
    const bool contain_consumer =
        resil_ && resil_->canContain() && !write &&
        (req.cls == RequesterClass::Core || req.cls == RequesterClass::Ptw);
    RequestMeta local;
    if (contain_consumer && !req.meta)
        req.meta = &local;
    while (true) {
        sim::Addr poisoned = sim::kBadAddr;
        sim::Addr first = lineBase(req.paddr);
        sim::Addr last = lineBase(req.paddr + req.size - 1);
        for (sim::Addr line = first; line <= last; line += kLineSize) {
            bool before = req.meta && req.meta->poison;
            sim::Addr lo = std::max(req.paddr, line);
            sim::Addr hi = std::min(req.paddr + req.size, line + kLineSize);
            co_await fabric_.dmaLine(
                req.child(lo, static_cast<std::uint32_t>(hi - lo), req.kind),
                line, write);
            if (!before && req.meta && req.meta->poison &&
                poisoned == sim::kBadAddr)
                poisoned = line;
        }
        if (!contain_consumer || poisoned == sim::kBadAddr)
            co_return;
        // Containment flushes the poisoned line's holders and retires its
        // page; one clean retry of the whole access then succeeds.
        co_await resil_->contain(
            poisoned, req.tile,
            poisonCause(req.meta, fault::FaultClass::BitFlipLlc));
        req.meta->poison = false;
    }
}

}  // namespace maple::mem
