/**
 * @file
 * Sparse-directory MSI home node (Graphite pr_l1_sh_l2_spdir_msi style)
 * and the CoherenceFabric that routes protocol transactions between the
 * coherent L1s, the home directories co-located with the LLC slices, and
 * the mesh.
 *
 * Division of labor:
 *  - mem::Cache (with attachCoherence) holds per-line MSI state and the
 *    transient-state table layered on its MSHRs; its misses/upgrades call
 *    CoherenceFabric::fetch() instead of its downstream port.
 *  - Directory (one per LLC slice) serializes all transactions on a line
 *    behind a per-line busy lock, owns the sharer bookkeeping, and drives
 *    invalidations / interventions as real mesh packets.
 *  - CoherenceFabric owns slice homing (address-interleaved), the dense
 *    cache registry the directories index their sharer vectors with, the
 *    message-transit helper (flit billing + CohMsgDelay/CohMsgDrop fault
 *    hooks), and the optional flat-memory reference checker.
 *
 * Locking discipline (deadlock freedom): a transaction acquires exactly one
 * per-line lock, at its home slice, and holds it across every message leg
 * including the final install into the requester (Cache::cohInstall runs
 * synchronously inside the lock) — so a fill response can never be overtaken
 * by a later invalidation for the same line. The only second lock ever taken
 * is for a directory-eviction victim, and that one is take-if-free only
 * (never awaited), so no cycle can form. Dirty-eviction PutM writebacks run
 * detached and re-acquire their own line's lock from scratch.
 *
 * Message attribution: demand legs (GetS/GetM out, Data back, PutM) ride the
 * originating request's class, the PR-4 rule; everything the directory
 * originates (Inv, InvAck, Fwd-GetS/GetM, downgrade/writeback acks, recall
 * writebacks) is billed to RequesterClass::Coherence so per-class arbiters,
 * the mesh counters and fault campaigns can see pure protocol overhead.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/coherence.hpp"
#include "mem/physical_memory.hpp"
#include "mem/port.hpp"
#include "noc/mesh.hpp"
#include "sim/stats.hpp"

namespace maple::mem {

class ResilManager;

/**
 * Protocol-side interface of a coherent cache. All methods are synchronous:
 * they flip modeled state at the instant the directory (holding the line's
 * lock) decides the transition; message timing is billed separately by the
 * fabric. Implemented by mem::Cache when coherence is attached.
 */
class CoherentCache {
  public:
    virtual ~CoherentCache() = default;

    virtual const std::string &cohName() const = 0;
    virtual sim::TileId cohTile() const = 0;

    /**
     * Invalidate any copy of @p line (Inv or Fwd-GetM). Returns the state
     * the copy was in — M means the ack carries the dirty line back to the
     * home; I means the copy was silently evicted earlier (ack only).
     */
    virtual MsiState cohTakeLine(sim::Addr line) = 0;

    /** Drop write permission, M -> S (Fwd-GetS). True when the line was M
     *  (the downgrade ack then carries the dirty data home). */
    virtual bool cohDowngrade(sim::Addr line) = 0;

    /** Side-effect-free probe of the copy's current state (no LRU touch,
     *  no checker hook): I when absent. The directory uses it to tell a
     *  live S copy from a stale sharer bit before granting a header-only
     *  upgrade, and a PutM-in-flight from a completed downgrade. */
    virtual MsiState cohState(sim::Addr line) const = 0;

    /**
     * Grant @p line in @p st: upgrade in place when a copy is present (SM
     * completing), else install fresh — victim eviction inside rides
     * @p req's identity (dirty victims emit a detached PutM). Called by the
     * fabric with the home directory's line lock held, after the data
     * response transited, so a later Inv can never beat the fill.
     */
    virtual void cohInstall(sim::Addr line, MsiState st,
                            const MemRequest &req) = 0;
};

class CoherenceFabric;

/**
 * One sparse-directory home node, co-located with an LLC slice. Tracks only
 * lines with live private copies: a set-associative table of entries with a
 * bounded sharer vector; allocation pressure forces recall of a victim
 * line's copies (eviction-forced invalidation), and sharer-vector overflow
 * invalidates the oldest tracked sharer (limited-pointer scheme).
 */
class Directory {
  public:
    Directory(sim::EventQueue &eq, const CoherenceConfig &cfg,
              CoherenceFabric &fabric, std::string name, sim::TileId tile,
              Port &slice_llc);

    /**
     * One full GetS/GetM transaction for @p requester: lock, sharer/owner
     * resolution (Inv / Fwd legs), LLC data access, response transit, and
     * the install into the requester — all inside the line lock.
     */
    sim::Task<void> fetchTransaction(unsigned requester, MemRequest req,
                                     sim::Addr line, bool want_m);

    /** A dirty-eviction PutM from @p requester (detached at the cache). */
    sim::Task<void> putMTransaction(unsigned requester, MemRequest req,
                                    sim::Addr line);

    /**
     * A coherent non-caching access (MAPLE streams, core remote atomics):
     * writes invalidate every copy, reads downgrade an M owner, then the
     * LLC slice services the data. @p req's extent must lie within @p line.
     */
    sim::Task<void> dmaTransaction(MemRequest req, sim::Addr line, bool write);

    /**
     * Machine-check containment flush: recall the owner and invalidate every
     * sharer of @p line, then untrack it. A no-op when the line is not
     * tracked. Takes the line lock like any other transaction.
     */
    sim::Task<void> recallLine(sim::Addr line);

    /** Directory slots (sets * assoc) -- the scrub cursor space. */
    std::uint64_t
    entrySlots() const
    {
        return static_cast<std::uint64_t>(num_sets_) * cfg_.dir_assoc;
    }

    /**
     * Scrub one directory slot (synchronous, no simulated time): audit the
     * entry's sharer vector against each cache's ground-truth MSI state and
     * drop sharer bits whose cache is in I (silent S-evictions and
     * uncorrectable directory-entry corruption both leave them). Entries
     * whose line lock is busy are skipped -- the live transaction owns the
     * truth for that line. Owner bits are never repaired: an M copy's PutM
     * can be in flight, so cohState() == I does not prove staleness for an
     * owner (the protocol disambiguates via the stale-PutM notes instead).
     * Returns the number of repairs.
     */
    unsigned scrubAudit(std::uint64_t slot);

    sim::TileId tile() const { return tile_; }
    sim::StatGroup &stats() { return stats_; }
    const sim::StatGroup &stats() const { return stats_; }
    const std::string &name() const { return name_; }

    /** Live (tracked) entries, for occupancy probes and diagnostics. */
    unsigned entriesInUse() const { return live_entries_; }

    /** Transactions currently holding or awaiting a line lock. */
    std::size_t busyLines() const { return busy_.size(); }

    /** Snapshot support; only valid with no transaction in flight. */
    void saveState(ckpt::Sink &out) const;
    void loadState(ckpt::Source &in);

  private:
    struct Entry {
        sim::Addr tag = 0;
        bool valid = false;
        int owner = -1;                 ///< cache id holding M, or -1
        std::vector<unsigned> sharers;  ///< cache ids holding S (bounded)
        std::uint64_t lru = 0;
    };

    std::size_t setOf(sim::Addr line) const;
    Entry *find(sim::Addr line);

    /** Per-line transaction serialization. */
    sim::Task<void> lock(sim::Addr line);
    bool tryLock(sim::Addr line);
    void unlock(sim::Addr line);

    /** Allocate an entry for @p line, recalling a victim's copies if the
     *  set is full (only victims whose lock is free are considered). */
    sim::Task<Entry *> allocate(sim::Addr line);

    /** Inv every current sharer (parallel legs), then drop them all. */
    sim::Task<void> invalidateSharers(Entry &e, sim::Addr line);

    /** Single Inv/InvAck leg to @p cache. */
    sim::Task<void> invOne(unsigned cache, sim::Addr line);

    /** Fwd-GetM: recall the owner's (possibly dirty) copy to the home. */
    sim::Task<void> recallOwner(Entry &e, sim::Addr line);

    /** Fwd-GetS: downgrade the owner to S; dirty data comes home. */
    sim::Task<void> downgradeOwner(Entry &e, sim::Addr line);

    /** Detached dirty-data update of the LLC slice (off the critical path). */
    void writebackToSlice(sim::Addr line);

    void freeIfUntracked(Entry &e);

    /**
     * ECC draw on a directory-array lookup (BitFlipDir). Corrected errors
     * return the correction bubble for the caller to model; uncorrectable
     * ones force a conservative entry rebuild via corruptEntry().
     */
    sim::Cycle resilCheckLookup(sim::Addr line, RequesterClass rc);

    /**
     * An uncorrectable directory-array error: the rebuilt sharer vector may
     * include a cache that no longer holds the line. Modeled as one spurious
     * sharer bit pointing at a cache in I -- protocol-safe (identical to the
     * staleness silent S-evictions leave; invOne tolerates absent copies)
     * and exactly what the scrub engine exists to repair. Owned entries are
     * left alone (owner bits must never be guessed at).
     */
    void corruptEntry(sim::Addr line);

    /// @name Superseded-PutM disambiguation
    /// A dirty-eviction PutM travels detached and can be delayed past the
    /// point where the home already learned the copy is gone (a recall or
    /// downgrade finding the line absent, or the evicting cache's own
    /// re-fetch). Each such observation notes exactly one in-flight PutM
    /// from that cache as superseded; putMTransaction consumes a note
    /// before trusting `owner == requester`, so a stale PutM arriving
    /// after the same cache re-acquired M can never clear live ownership
    /// (ABA). Keyed by line, not entry: notes survive directory eviction.
    /// @{
    void noteStalePutM(sim::Addr line, unsigned cache);
    bool consumeStalePutM(sim::Addr line, unsigned cache);
    /// @}

    sim::EventQueue &eq_;
    const CoherenceConfig &cfg_;
    CoherenceFabric &fabric_;
    std::string name_;
    sim::TileId tile_;
    Port &slice_llc_;
    std::size_t num_sets_;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t lru_clock_ = 1;
    unsigned live_entries_ = 0;
    std::unordered_map<sim::Addr, sim::Signal> busy_;
    /** One element per superseded PutM in flight (cache id; duplicates
     *  allowed — the same cache can have several stale PutMs flying). */
    std::unordered_map<sim::Addr, std::vector<unsigned>> stale_putms_;
    sim::StatGroup stats_;
};

/**
 * The protocol hub: slice homing, the coherent-cache registry, message
 * transit (flit billing + fault hooks) and the reference checker. One per
 * Soc; caches and directories both hold a reference to it.
 */
class CoherenceFabric {
  public:
    CoherenceFabric(sim::EventQueue &eq, CoherenceConfig cfg, noc::Mesh &mesh);

    /** Register a coherent cache; returns its dense id (sharer-vector key). */
    unsigned registerCache(CoherentCache &cache);

    /** Add one home directory at @p tile, backed by @p slice_llc. */
    Directory &addSlice(sim::TileId tile, Port &slice_llc);

    unsigned numSlices() const { return static_cast<unsigned>(slices_.size()); }
    Directory &slice(unsigned s) { return *slices_.at(s); }

    unsigned
    homeSlice(sim::Addr line) const
    {
        return static_cast<unsigned>((line >> kLineShift) % slices_.size());
    }

    CoherentCache &cacheById(unsigned id) { return *caches_.at(id); }
    unsigned numCaches() const { return static_cast<unsigned>(caches_.size()); }

    /** Attach the soft-error resilience model; slices pick it up from here
     *  (directory-array ECC + the scrub engine's audits). */
    void setResil(ResilManager *r) { resil_ = r; }
    ResilManager *resil() const { return resil_; }

    /** Cache-miss / upgrade entry point (awaited by Cache). Installs into
     *  the requester before returning. */
    sim::Task<void> fetch(unsigned requester, MemRequest req, sim::Addr line,
                          bool want_m);

    /** Dirty-eviction writeback entry point (spawned detached by Cache). */
    sim::Task<void> putM(unsigned requester, MemRequest req, sim::Addr line);

    /** Coherent non-caching access covering one line (CoherentDmaPort). */
    sim::Task<void> dmaLine(MemRequest req, sim::Addr line, bool write);

    /**
     * One protocol message as a real mesh packet: flitsFor(payload) flits,
     * with CohMsgDelay/CohMsgDrop fault opportunities (a drop burns the
     * flits, times out, and retransmits — protocol liveness is preserved,
     * the latency is not).
     */
    sim::Task<void> message(sim::TileId src, sim::TileId dst, CohMsg kind,
                            unsigned payload_bytes, RequesterClass cls);

    const CoherenceConfig &config() const { return cfg_; }
    CoherenceChecker *checker() { return checker_.get(); }
    sim::EventQueue &eq() { return eq_; }

    std::uint64_t messagesSent(CohMsg m) const
    {
        return msg_counts_[static_cast<std::size_t>(m)];
    }

    /** Aggregate protocol counters across all slices (reports, benches). */
    std::uint64_t totalInvalidations() const;
    std::uint64_t totalInterventions() const;

    /** Snapshot support (per-slice directory state + message counters). */
    void saveState(ckpt::Sink &out) const;
    void loadState(ckpt::Source &in);

  private:
    sim::EventQueue &eq_;
    CoherenceConfig cfg_;
    noc::Mesh &mesh_;
    ResilManager *resil_ = nullptr;
    std::unique_ptr<CoherenceChecker> checker_;
    std::vector<std::unique_ptr<Directory>> slices_;
    std::vector<CoherentCache *> caches_;
    std::array<std::uint64_t, static_cast<std::size_t>(CohMsg::kCount)>
        msg_counts_{};
};

/**
 * Port adaptor giving non-caching agents (MAPLE consume/produce streams,
 * core remote atomics and shared-data fallbacks) a protocol-correct path:
 * each covered line goes through its home directory, which invalidates or
 * downgrades private copies before the LLC slice services the data. The
 * drop-in coherent replacement for the legacy direct-to-LLC RemotePorts.
 */
class CoherentDmaPort : public Port {
  public:
    explicit CoherentDmaPort(CoherenceFabric &fabric) : fabric_(fabric) {}

    sim::Task<void> request(MemRequest req) override;

    /** Attach the resilience model: a core/PTW-class access that reads
     *  poison triggers machine-check containment and one clean retry. */
    void setResil(ResilManager *r) { resil_ = r; }

  private:
    CoherenceFabric &fabric_;
    ResilManager *resil_ = nullptr;
};

}  // namespace maple::mem
