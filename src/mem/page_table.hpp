/**
 * @file
 * Sv39-style three-level radix page tables.
 *
 * The tables themselves live in simulated physical memory, so the hardware
 * page-table walker (PageTableWalker) performs real, timed memory reads when
 * resolving a TLB miss -- exactly the latency effect the paper discusses for
 * irregular accesses that span many pages.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "mem/physical_memory.hpp"
#include "sim/types.hpp"

namespace maple::mem {

/** Page table entry, Sv39-flavored. */
struct Pte {
    std::uint64_t raw = 0;

    static constexpr std::uint64_t kValid = 1ull << 0;
    static constexpr std::uint64_t kRead = 1ull << 1;
    static constexpr std::uint64_t kWrite = 1ull << 2;
    static constexpr std::uint64_t kExec = 1ull << 3;
    static constexpr std::uint64_t kUser = 1ull << 4;
    static constexpr unsigned kPpnShift = 10;

    bool valid() const { return raw & kValid; }
    bool readable() const { return raw & kRead; }
    bool writable() const { return raw & kWrite; }
    bool user() const { return raw & kUser; }
    /** Leaf PTEs have at least one of R/W/X set; pointers have none. */
    bool leaf() const { return raw & (kRead | kWrite | kExec); }
    sim::Addr ppn() const { return raw >> kPpnShift; }
    sim::Addr paddrBase() const { return ppn() << kPageShift; }

    static Pte
    makeLeaf(sim::Addr paddr, bool writable, bool user = true)
    {
        Pte p;
        p.raw = ((paddr >> kPageShift) << kPpnShift) | kValid | kRead |
                (writable ? kWrite : 0) | (user ? kUser : 0);
        return p;
    }

    static Pte
    makePointer(sim::Addr table_paddr)
    {
        Pte p;
        p.raw = ((table_paddr >> kPageShift) << kPpnShift) | kValid;
        return p;
    }
};

/** Access permissions requested by a translation. */
struct Perms {
    bool write = false;
};

inline constexpr unsigned kPtLevels = 3;
inline constexpr unsigned kVpnBits = 9;
inline constexpr unsigned kPtesPerPage = 1u << kVpnBits;

/** Virtual page number field of @p vaddr at walk level @p level (2 = root). */
inline constexpr std::uint64_t
vpnField(sim::Addr vaddr, unsigned level)
{
    return (vaddr >> (kPageShift + kVpnBits * level)) & (kPtesPerPage - 1);
}

inline constexpr sim::Addr vpnOf(sim::Addr vaddr) { return vaddr >> kPageShift; }

/**
 * Builder/functional-walker over an in-memory radix table.
 *
 * Frame allocation is delegated to the OS via @p alloc so this class stays a
 * pure memory-format concern.
 */
class PageTable {
  public:
    using FrameAlloc = std::function<sim::Addr()>;

    PageTable(PhysicalMemory &pm, FrameAlloc alloc);

    /** Physical address of the root table page (the "satp" of this space). */
    sim::Addr rootPaddr() const { return root_; }

    /** Map one 4KB virtual page to a physical frame. Remap overwrites. */
    void map(sim::Addr vaddr, sim::Addr paddr, bool writable);

    /** Invalidate the leaf mapping of @p vaddr (no-op when unmapped). */
    void unmap(sim::Addr vaddr);

    /** Zero-latency walk (for the OS and for checking), nullopt on fault. */
    std::optional<Pte> walk(sim::Addr vaddr) const;

    /** Translate a full virtual address; nullopt on fault/perm violation. */
    std::optional<sim::Addr> translate(sim::Addr vaddr, Perms perms) const;

    /** Number of page-table pages allocated (for the area/footprint stats). */
    size_t tablePages() const { return table_pages_; }

    /**
     * Snapshot support: point this table at a root frame restored from a
     * snapshot. The table *contents* live in simulated physical memory and
     * are restored with it; only the host-side root pointer and page count
     * need adopting.
     */
    void
    adoptState(sim::Addr root, size_t table_pages)
    {
        root_ = root;
        table_pages_ = table_pages;
    }

  private:
    sim::Addr pteAddr(sim::Addr table, sim::Addr vaddr, unsigned level) const;

    PhysicalMemory &pm_;
    FrameAlloc alloc_;
    sim::Addr root_;
    size_t table_pages_ = 1;
};

}  // namespace maple::mem
