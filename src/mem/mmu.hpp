/**
 * @file
 * Memory-management unit: TLB + hardware page-table walker + fault hook.
 *
 * Both cores and MAPLE instances own an Mmu. On a TLB miss the walker issues
 * timed reads for each page-table level through a memory port (so walks cost
 * real cycles and bandwidth). On a page fault the optional fault handler --
 * the MAPLE device driver in `src/os` -- is invoked; if it resolves the fault
 * the translation is retried once.
 */
#pragma once

#include <functional>
#include <optional>

#include "mem/page_table.hpp"
#include "mem/physical_memory.hpp"
#include "mem/port.hpp"
#include "mem/tlb.hpp"
#include "sim/coro.hpp"
#include "sim/stats.hpp"

namespace maple::mem {

struct Translation {
    bool fault = false;
    sim::Addr paddr = sim::kBadAddr;
};

class Mmu {
  public:
    /**
     * A fault handler resolves a page fault (e.g. maps the page) and returns
     * true, or returns false for a truly fatal access error. It may take
     * simulated time (it is a coroutine): interrupt + driver latency.
     */
    using FaultHandler = std::function<sim::Task<bool>(sim::Addr vaddr, bool write)>;

    Mmu(sim::EventQueue &eq, PhysicalMemory &pm, Port &walk_port,
        size_t tlb_entries = 16, sim::TileId tile = 0)
        : eq_(eq), pm_(pm), walk_port_(walk_port), tlb_(tlb_entries),
          tile_(tile)
    {
    }

    /**
     * Point the MMU at an address space (root page-table frame). Re-pointing
     * at the *same* root is a no-op: post-restore re-attachment must not
     * flush a TLB whose warmed contents were just restored.
     */
    void
    setRoot(sim::Addr root_paddr)
    {
        if (root_ == root_paddr)
            return;
        root_ = root_paddr;
        tlb_.flush();
    }

    void setFaultHandler(FaultHandler h) { fault_handler_ = std::move(h); }

    /**
     * Translate @p vaddr, charging TLB/walk/fault latency as appropriate.
     * Returns fault=true only if the fault handler failed (or none is set).
     */
    sim::Task<Translation>
    translate(sim::Addr vaddr, bool write)
    {
        for (int attempt = 0; attempt < 2; ++attempt) {
            if (auto pte = tlb_.lookup(vaddr)) {
                if (pte->readable() && (!write || pte->writable()))
                    co_return Translation{false, pte->paddrBase() | pageOffset(vaddr)};
                tlb_.invalidate(vaddr);  // stale permissions: rewalk
            }
            auto walked = co_await walk(vaddr);
            if (walked && walked->readable() && (!write || walked->writable())) {
                tlb_.insert(vaddr, *walked);
                co_return Translation{
                    false, walked->paddrBase() | pageOffset(vaddr)};
            }
            faults_.inc();
            if (attempt == 1 || !fault_handler_)
                break;
            bool resolved = co_await fault_handler_(vaddr, write);
            if (!resolved)
                break;
        }
        co_return Translation{true, sim::kBadAddr};
    }

    /** TLB shootdown for one page (called by the OS on unmap/remap). */
    void invalidate(sim::Addr vaddr) { tlb_.invalidate(vaddr); }

    /** Full TLB shootdown. */
    void flush() { tlb_.flush(); }

    Tlb &tlb() { return tlb_; }
    std::uint64_t walks() const { return walks_.value(); }
    std::uint64_t faults() const { return faults_.value(); }

    /**
     * Snapshot support. The fault handler is host-side std::function state
     * and is not serialized: restore re-installs it via the same attach path
     * that installed it originally.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        out.u64(root_);
        tlb_.saveState(out);
        walks_.saveState(out);
        faults_.saveState(out);
    }

    void
    loadState(ckpt::Source &in)
    {
        root_ = in.u64();
        tlb_.loadState(in);
        walks_.loadState(in);
        faults_.loadState(in);
    }

  private:
    /** Timed three-level walk; nullopt when any level is invalid. */
    sim::Task<std::optional<Pte>>
    walk(sim::Addr vaddr)
    {
        MAPLE_ASSERT(root_ != sim::kBadAddr, "MMU has no address space");
        walks_.inc();
        sim::Addr table = root_;
        for (unsigned level = kPtLevels; level-- > 0;) {
            sim::Addr pte_addr =
                table + vpnField(vaddr, level) * sizeof(std::uint64_t);
            co_await walk_port_.request(
                MemRequest::make(eq_, RequesterClass::Ptw, tile_, pte_addr,
                                 sizeof(std::uint64_t), AccessKind::Read));
            Pte pte{pm_.readU64(pte_addr)};
            if (!pte.valid())
                co_return std::nullopt;
            if (pte.leaf())
                co_return pte;
            table = pte.paddrBase();
        }
        co_return std::nullopt;
    }

    sim::EventQueue &eq_;
    PhysicalMemory &pm_;
    Port &walk_port_;
    Tlb tlb_;
    sim::TileId tile_;
    sim::Addr root_ = sim::kBadAddr;
    FaultHandler fault_handler_;
    sim::Counter walks_, faults_;
};

}  // namespace maple::mem
