/**
 * @file
 * Coherence-protocol vocabulary shared by the caches, the sparse directory
 * and the SoC wiring, plus the flat-memory reference checker.
 *
 * The simulator keeps data in one PhysicalMemory, so a protocol bug cannot
 * corrupt *values* -- what it corrupts is the honesty of the timing model: a
 * core reading a line another agent wrote without an invalidation is exactly
 * the "silent stale read" the pre-coherence hierarchy allowed everywhere.
 * The CoherenceChecker is therefore a protocol-level shadow model: it tracks,
 * per line, a version number (bumped by every store) and, per cache, the
 * version the cache's copy corresponds to. Every demand load through a
 * coherent cache asserts its copy is current; every state transition asserts
 * the single-writer/multiple-reader invariant. With the protocol correct the
 * checker is silent; any missed invalidation, lost writeback or racy install
 * throws a typed CoherenceError naming the line and the caches involved.
 *
 * Knobs (env, or --coherence/--coh-check harness flags):
 *   MAPLE_COHERENCE=none|msi   protocol mode (default none: the legacy
 *                              incoherent hierarchy, bit-identical to HEAD)
 *   MAPLE_COH_CHECK=1          enable the reference checker (msi mode only)
 *   MAPLE_COH_DIR_ENTRIES=<n>  sparse-directory entries per LLC slice
 *   MAPLE_COH_DIR_ASSOC=<n>    sparse-directory associativity
 *   MAPLE_COH_MAX_SHARERS=<n>  bounded sharer-vector width
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/error.hpp"
#include "sim/types.hpp"

namespace maple::mem {

/** Protocol selector for the whole memory hierarchy. */
enum class CoherenceMode : std::uint8_t {
    None,  ///< legacy incoherent write-back hierarchy (bit-identical)
    Msi,   ///< sparse-directory MSI over the typed fabric
};

const char *coherenceModeName(CoherenceMode m);
std::optional<CoherenceMode> parseCoherenceMode(std::string_view s);
CoherenceMode coherenceModeFromEnv(const char *env, CoherenceMode fallback);

/** Stable per-line states of a coherent (L1) cache. */
enum class MsiState : std::uint8_t {
    I,  ///< invalid / not present
    S,  ///< shared, read-only, clean
    M,  ///< modified, exclusive, dirty
};

const char *msiStateName(MsiState s);

/**
 * Transient states of an L1 line with a protocol transaction in flight,
 * layered on the MSHR table (IS/IM ride the fill MSHR; SM is an upgrade of
 * a present line and has no MSHR).
 */
enum class TransientState : std::uint8_t {
    IS,  ///< GetS issued, fill pending
    IM,  ///< GetM issued, fill pending
    SM,  ///< upgrade GetM issued for a line held in S
};

/**
 * Protocol message kinds riding the mesh as real flits. Control messages
 * are header-only packets; Data/PutM/recall-writeback legs carry a line.
 * Demand legs (GetS/GetM out, Data back) are billed to the *original*
 * requester class, the PR-4 attribution rule; directory-originated traffic
 * (Inv, acks, forwards) is billed to RequesterClass::Coherence.
 */
enum class CohMsg : std::uint8_t {
    GetS,      ///< read permission request (I -> S)
    GetM,      ///< write permission request (I/S -> M)
    PutM,      ///< dirty-eviction writeback notice + line data
    Inv,       ///< directory asks a sharer/owner to drop the line
    InvAck,    ///< invalidation acknowledged
    FwdGetS,   ///< downgrade intervention: owner -> S, line to the home slice
    FwdGetM,   ///< recall intervention: owner invalidated, line to the home
    Downgrade, ///< downgrade acknowledge (with data when the owner was M)
    WbAck,     ///< writeback acknowledged (completes a PutM)
    Data,      ///< data response granting S or M
    kCount
};

const char *cohMsgName(CohMsg m);

/** Configuration of the protocol layer (one per SoC, shared by slices). */
struct CoherenceConfig {
    CoherenceMode mode = CoherenceMode::None;
    /** Sparse-directory entries per LLC slice (tracked lines). */
    unsigned dir_entries = 4096;
    /** Sparse-directory associativity (entries per set). */
    unsigned dir_assoc = 8;
    /** Bounded sharer vector: adding a sharer past this width invalidates
     *  the oldest tracked sharer first (limited-pointer scheme). */
    unsigned max_sharers = 8;
    /** Directory lookup/occupancy latency per transaction. */
    sim::Cycle dir_latency = 4;
    /** Cross-check every demand load against the shadow model. */
    bool checker = false;

    bool enabled() const { return mode != CoherenceMode::None; }

    /** Overlay the MAPLE_COHERENCE / MAPLE_COH_* environment knobs. */
    void mergeEnv();
};

/** A protocol invariant was violated (stale read, double owner, ...). */
class CoherenceError : public sim::FatalError {
  public:
    using sim::FatalError::FatalError;
};

/**
 * Flat-memory reference checker: a sequentially-consistent shadow of what
 * each coherent cache may legally hold. All hooks are synchronous (no
 * timing); they are called at the instant the modeled state changes.
 *
 * Caches are identified by the small dense id handed out at registration
 * (Cache::attachCoherence); lines by their base address.
 */
class CoherenceChecker {
  public:
    /** Register one coherent cache; returns its dense id. */
    unsigned registerCache(std::string name);

    /// @name Cache-side transitions
    /// @{
    void onInstall(unsigned cache, sim::Addr line, MsiState st);
    void onUpgrade(unsigned cache, sim::Addr line);
    void onDowngrade(unsigned cache, sim::Addr line);
    void onRelease(unsigned cache, sim::Addr line);
    void onLoad(unsigned cache, sim::Addr line);
    void onStore(unsigned cache, sim::Addr line);
    /// @}

    /// @name Non-caching coherent agents (MAPLE streams, core atomics)
    /// @{
    void onDmaRead(sim::Addr line);
    void onDmaWrite(sim::Addr line);
    /// @}

    std::uint64_t loadsChecked() const { return loads_checked_; }
    std::uint64_t storesChecked() const { return stores_checked_; }

    /**
     * Forget all shadow state (snapshot restore: the caches re-seed their
     * holder sets via Cache::cohSeedChecker; versions restart at zero, which
     * is consistent because every holder's acquired version restarts too).
     */
    void reset();

    /** Re-declare @p cache as holding @p line in @p st (restore seeding). */
    void seedHolder(unsigned cache, sim::Addr line, MsiState st);

  private:
    struct LineShadow {
        std::uint64_t version = 0;        ///< bumped by every store
        int owner = -1;                   ///< cache id in M, or -1
        /** (cache id, version its copy corresponds to); owner included. */
        std::vector<std::pair<unsigned, std::uint64_t>> holders;
    };

    LineShadow &shadow(sim::Addr line) { return lines_[line]; }
    const char *cacheName(unsigned cache) const;
    std::vector<std::pair<unsigned, std::uint64_t>>::iterator
    findHolder(LineShadow &sh, unsigned cache);

    std::unordered_map<sim::Addr, LineShadow> lines_;
    std::vector<std::string> names_;
    std::uint64_t loads_checked_ = 0;
    std::uint64_t stores_checked_ = 0;
};

}  // namespace maple::mem
