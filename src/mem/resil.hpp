/**
 * @file
 * Soft-error resilience for the memory hierarchy: a SECDED ECC model, poison
 * tracking below the caches, per-tile sticky machine-check (MCA) banks, and
 * the background directory scrub engine.
 *
 * The design follows what real manycore parts do (DESIGN.md §15):
 *
 *  - Every protected structure (L1, LLC slice, directory, DRAM) runs its
 *    accesses past check(): a seeded BitFlip* draw (fault/fault.hpp) models
 *    the soft error, and the SECDED code classifies it. A *correctable*
 *    (single-bit) error costs a fixed correction penalty and bumps a
 *    counter; an *uncorrectable* (multi-bit) error cannot be hidden — the
 *    line is marked poisoned and the error is latched into the tile's MCA
 *    bank.
 *
 *  - Poison is data-path state, not control flow: it rides fills,
 *    writebacks, interventions and DMA responses as RequestMeta::poison
 *    until a consumer touches it. A core consuming poison triggers
 *    machine-check containment (the handler installed by the Soc: flush the
 *    line's holders, retire the physical page, resume); MAPLE consuming
 *    poison reuses the hard-fault machinery (MapleStatus::Poisoned + the OS
 *    recovery driver). Poison that reaches DRAM (a poisoned dirty
 *    writeback, or an uncorrectable DRAM error) is sticky per line in
 *    backing_poison_ until containment retires the page.
 *
 *  - The scrub engine is a background loop that wakes every scrub_interval
 *    cycles and audits a batch of directory entries against the ground
 *    truth (CoherentCache::cohState), repairing stale sharer bits (left by
 *    silent S-evictions and by uncorrectable directory-entry corruption)
 *    and counting repairs. It runs as an ordinary event-queue coroutine, so
 *    it is bit-identical across --threads=N and pauses itself whenever the
 *    machine is otherwise idle (snapshots stay possible between run phases;
 *    the cursor round-trips through the checkpoint).
 *
 * Everything here is off by default: with MAPLE_ECC unset/off and no scrub
 * interval, no ResilManager is constructed and the simulation is
 * byte-identical to builds that predate it.
 *
 * Knobs (env, or --ecc / --scrub-interval via harness::applyFabricFlags):
 *   MAPLE_ECC=<off|secded>           enable the SECDED model (default off)
 *   MAPLE_ECC_CORRECT_LATENCY=<cyc>  correction penalty (default 8)
 *   MAPLE_SCRUB_INTERVAL=<cycles>    directory scrub period (0 = off)
 *   MAPLE_SCRUB_BATCH=<n>            directory entries audited per pass
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "ckpt/serial.hpp"
#include "fault/fault.hpp"
#include "mem/port.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace maple::mem {

struct ResilConfig {
    bool ecc = false;                ///< SECDED model on (MAPLE_ECC=secded)
    sim::Cycle correct_latency = 8;  ///< penalty per corrected error
    sim::Cycle scrub_interval = 0;   ///< scrub period in cycles (0 = off)
    unsigned scrub_batch = 16;       ///< directory entries audited per pass

    /** True when any part of the resilience subsystem must be built. */
    bool enabled() const { return ecc || scrub_interval > 0; }

    /** Overlay the MAPLE_ECC* / MAPLE_SCRUB* environment knobs. */
    void mergeEnv();
};

/** SECDED classification of one access (see ResilManager::check). */
enum class EccOutcome : std::uint8_t {
    Clean,          ///< no error drawn
    Corrected,      ///< single-bit: corrected, caller charges correctPenalty
    Uncorrectable,  ///< multi-bit: the line must be treated as poisoned
};

/** Protected structure in which an error was detected (MCA encoding). */
enum class ResilStructure : std::uint8_t { L1, Llc, Directory, Dram, kCount };
const char *resilStructureName(ResilStructure s);

/**
 * Name the origin of a poisoned response: the first BitFlip* class tagged
 * into @p m's fault_tags, or @p fallback when the tags don't say (poison
 * detected before the request existed, e.g. a poisoned way serving a later
 * hit). Used to fill MCA-bank cause fields and MAPLE error causes.
 */
fault::FaultClass poisonCause(const RequestMeta *m, fault::FaultClass fallback);

/**
 * One tile's sticky machine-check bank. The first error latches structure/
 * cause/addr/cycle; later errors only bump the count, until software clears
 * the bank (an MMIO store to the tile's bank window, or clearMca()).
 */
struct McaBank {
    bool valid = false;
    std::uint8_t structure = 0;  ///< ResilStructure of the first error
    std::uint8_t cause = 0;      ///< fault::FaultClass of the first error
    sim::Addr addr = 0;          ///< line address of the first error
    std::uint64_t count = 0;     ///< errors recorded since the last clear
    sim::Cycle first_cycle = 0;  ///< cycle of the first latched error
};

class ResilManager {
  public:
    ResilManager(sim::EventQueue &eq, ResilConfig cfg, unsigned num_tiles);

    ResilManager(const ResilManager &) = delete;
    ResilManager &operator=(const ResilManager &) = delete;

    const ResilConfig &config() const { return cfg_; }

    /// @name SECDED model
    /// @{

    /**
     * Run one access to @p st past the ECC model: draws the class-keyed
     * BitFlip* opportunity and classifies the severity. On Corrected the
     * correction penalty is accounted (stall attribution) here and the
     * *caller* models it by delaying correctPenalty() cycles. On
     * Uncorrectable the error is latched into @p tile's MCA bank; the
     * caller marks the affected line poisoned. Clean (and free) whenever
     * ECC is off or no injector is active.
     */
    EccOutcome check(fault::FaultClass cls, RequesterClass rc,
                     ResilStructure st, sim::Addr line, sim::TileId tile);

    sim::Cycle correctPenalty() const { return cfg_.correct_latency; }

    /// @}

    /// @name Poison below the caches (per line, sticky until page retire)
    /// @{

    void markBackingPoisoned(sim::Addr line);
    bool
    backingPoisoned(sim::Addr line) const
    {
        return !backing_poison_.empty() && backing_poison_.count(line) > 0;
    }
    /** Containment retired @p page_base: drop all of its line poison. */
    void clearBackingPoisonPage(sim::Addr page_base);
    std::size_t backingPoisonedLines() const { return backing_poison_.size(); }

    /// @}

    /// @name MCA banks (one per mesh tile, MMIO-readable via the Soc)
    /// @{

    void recordMca(sim::TileId tile, ResilStructure st,
                   fault::FaultClass cause, sim::Addr addr);
    const McaBank &mca(sim::TileId tile) const { return mca_.at(tile); }
    void clearMca(sim::TileId tile) { mca_.at(tile) = McaBank{}; }
    unsigned numTiles() const { return static_cast<unsigned>(mca_.size()); }

    /// @}

    /// @name Machine-check containment
    /// @{

    /**
     * The containment handler (os::PageRetirer via the Soc): flush the
     * poisoned line's holders, retire the afflicted physical page, resume.
     * Takes simulated time (kernel handler latency + protocol recalls).
     */
    using ContainFn = std::function<sim::Task<void>(
        sim::Addr line, sim::TileId tile, fault::FaultClass cause)>;
    void setContainHandler(ContainFn fn) { contain_ = std::move(fn); }

    /** True once a containment handler is installed. Consumers only retry
     *  after containment when it can actually repair the line; without a
     *  handler they forward the poison instead (no livelock). */
    bool canContain() const { return static_cast<bool>(contain_); }

    /** A core-class consumer touched poison: run containment. */
    sim::Task<void> contain(sim::Addr line, sim::TileId tile,
                            fault::FaultClass cause);

    /// @}

    /// @name Directory scrub engine
    /// @{

    /**
     * The auditor walks up to @p budget directory entries from @p cursor
     * (advancing and wrapping it) and returns the number of repairs made.
     * Installed by the Soc in msi mode; without one the scrub loop is inert.
     */
    using ScrubFn = std::function<unsigned(std::uint64_t &cursor,
                                           unsigned budget)>;
    void setScrubAuditor(ScrubFn fn) { scrub_auditor_ = std::move(fn); }

    /**
     * Start the background scrub loop if configured and not already
     * running. Called by Soc::run() at every phase start: the loop parks on
     * the event queue, audits one batch per interval while the machine is
     * busy, and exits once it would be the only pending activity (so the
     * queue drains and the SoC can quiesce for snapshots).
     */
    void kickScrub();
    bool scrubRunning() const { return scrub_running_; }
    std::uint64_t scrubCursor() const { return scrub_cursor_; }

    /// @}

    /// @name Telemetry
    /// @{

    std::uint64_t corrected(ResilStructure st) const
    {
        return corrected_[static_cast<std::size_t>(st)]->value();
    }
    std::uint64_t uncorrectable(ResilStructure st) const
    {
        return uncorrectable_[static_cast<std::size_t>(st)]->value();
    }
    std::uint64_t correctedTotal() const;
    std::uint64_t uncorrectableTotal() const;
    std::uint64_t containments() const { return containments_->value(); }
    std::uint64_t retiredPages() const { return retired_pages_->value(); }
    std::uint64_t scrubPasses() const { return scrub_passes_->value(); }
    std::uint64_t scrubRepairs() const { return scrub_repairs_->value(); }

    /** PageRetirer bookkeeping hook: one physical page was remapped. */
    void noteRetiredPage() { retired_pages_->inc(); }

    sim::StatGroup &stats() { return stats_; }

    /** One-line state dump for the deadlock diagnostic. */
    std::string summary() const;

    /// @}

    /**
     * Snapshot support (src/ckpt, Section::Resil). Captures counters, MCA
     * banks, the backing-poison set and the scrub cursor. The scrub loop
     * itself must not be running (quiesced SoC): it restarts from the
     * restored cursor at the next run phase.
     */
    void saveState(ckpt::Sink &out) const;
    void loadState(ckpt::Source &in);

  private:
    sim::Task<void> scrubLoop();

    sim::EventQueue &eq_;
    ResilConfig cfg_;
    sim::StatGroup stats_;

    static constexpr std::size_t kStructures =
        static_cast<std::size_t>(ResilStructure::kCount);
    std::array<sim::Counter *, kStructures> corrected_{};
    std::array<sim::Counter *, kStructures> uncorrectable_{};
    sim::Counter *containments_ = nullptr;
    sim::Counter *retired_pages_ = nullptr;
    sim::Counter *mca_records_ = nullptr;
    sim::Counter *scrub_passes_ = nullptr;
    sim::Counter *scrub_repairs_ = nullptr;

    std::vector<McaBank> mca_;
    /** Ordered so serialization is independent of insertion order. */
    std::set<sim::Addr> backing_poison_;

    ContainFn contain_;
    ScrubFn scrub_auditor_;
    std::uint64_t scrub_cursor_ = 0;
    bool scrub_running_ = false;
};

}  // namespace maple::mem
