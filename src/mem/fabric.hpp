/**
 * @file
 * Fabric-level policy stages for the typed memory-request protocol:
 *
 *  - Arbiter: a pluggable single-issue admission stage (one grant per
 *    cycle) in front of a shared resource. Policies: fifo (pass-through,
 *    models the historical infinite-front-end behavior and is timing-
 *    neutral by construction), round-robin-by-class and core-priority.
 *  - PortInterposer: a reusable observe/reroute/arbitrate stage any port
 *    boundary can host. Generalizes the old one-off soc::LlcFrontEnd: the
 *    shared-LLC front-end is one instance, and memory-side baseline
 *    hardware (the DROPLET prefetch buffer) interposes through it instead
 *    of rewiring ports. Records per-requester-class end-to-end latency
 *    histograms and bandwidth counters.
 */
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "mem/port.hpp"
#include "sim/stats.hpp"

namespace maple::mem {

/** Arbitration policy of a shared fabric stage (LLC front-end, DRAM queue). */
enum class ArbPolicy : std::uint8_t {
    Fifo,              ///< no admission gate: requests pass through untouched
    RoundRobinByClass, ///< single flit-serialized port, classes round-robin
    CorePriority,      ///< single flit-serialized port, cores (then PTW) first
};

const char *arbPolicyName(ArbPolicy p);

/** Parse "fifo" | "rr" | "round-robin" | "core-priority"; nullopt if unknown. */
std::optional<ArbPolicy> parseArbPolicy(std::string_view s);

/** Policy from environment variable @p env, or @p fallback when unset. */
ArbPolicy arbPolicyFromEnv(const char *env, ArbPolicy fallback);

/**
 * Single-ported admission stage: the protected resource ingests one flit
 * (16 bytes by default, header included) per cycle, so a request occupies
 * the port for 1 + ceil(size / flit_bytes) cycles and later arrivals queue.
 * When several classes are waiting, the policy picks who goes next. Only
 * constructed for non-fifo policies -- fifo stages keep a null Arbiter and
 * model the historical infinitely-ported front-end, which is what makes
 * the default configuration bit-identical to the pre-fabric implementation.
 */
class Arbiter {
  public:
    Arbiter(sim::EventQueue &eq, std::string name, ArbPolicy policy,
            unsigned flit_bytes = 16);

    /** Completes when the request is granted an issue slot. */
    sim::Task<void> admit(const MemRequest &req);

    ArbPolicy policy() const { return policy_; }
    std::uint64_t grants(RequesterClass c) const
    {
        return grants_[static_cast<std::size_t>(c)];
    }
    std::uint64_t totalGrants() const { return total_grants_; }

    /** Cycles requests spent queued at this stage, summed over requests. */
    sim::Cycle waitCycles() const { return wait_cycles_; }

    /** Snapshot support; requires no queued waiters (quiesced SoC). */
    void
    saveState(ckpt::Sink &out) const
    {
        MAPLE_ASSERT(waiting_count_ == 0 && !pump_running_,
                     "snapshot with queued arbiter waiters");
        out.u32(rr_next_);
        out.u64(next_free_);
        for (std::uint64_t g : grants_)
            out.u64(g);
        out.u64(total_grants_);
        out.u64(wait_cycles_);
    }

    void
    loadState(ckpt::Source &in)
    {
        MAPLE_ASSERT(waiting_count_ == 0 && !pump_running_,
                     "restore with queued arbiter waiters");
        rr_next_ = in.u32();
        next_free_ = in.u64();
        for (std::uint64_t &g : grants_)
            g = in.u64();
        total_grants_ = in.u64();
        wait_cycles_ = in.u64();
    }

  private:
    struct Waiter {
        sim::Signal sig;
        unsigned occ;  ///< port cycles this request holds once granted
    };

    /** Port cycles a @p size -byte request occupies (header + payload). */
    unsigned occupancy(std::uint32_t size) const;

    /** Index of the next class to serve, or kNumRequesterClasses if none. */
    unsigned pick();

    /** Drains the waiter queues, one grant per freed port slot. */
    sim::Task<void> pump();

    sim::EventQueue &eq_;
    std::string name_;
    ArbPolicy policy_;
    unsigned flit_bytes_;
    std::array<std::deque<Waiter>, kNumRequesterClasses> waiting_;
    unsigned waiting_count_ = 0;
    bool pump_running_ = false;
    unsigned rr_next_ = 0;
    sim::Cycle next_free_ = 0;
    std::array<std::uint64_t, kNumRequesterClasses> grants_{};
    std::uint64_t total_grants_ = 0;
    sim::Cycle wait_cycles_ = 0;
};

/**
 * Reusable port-boundary stage: arbitrates admission (optional), reroutes
 * through an interposed Port (optional), forwards downstream, then samples
 * per-requester-class end-to-end latency (completion cycle minus the
 * origin's issue cycle) and bandwidth, and finally notifies an observer.
 * Stats live in a StatGroup ("latency.<class>" histograms, "bytes.<class>"
 * and "requests.<class>" counters) so the harness dumps them alongside
 * every other component.
 */
class PortInterposer : public Port {
  public:
    using Observer = std::function<void(const MemRequest &req)>;

    PortInterposer(sim::EventQueue &eq, std::string name, Port &downstream,
                   ArbPolicy arb = ArbPolicy::Fifo);

    /** Called after each completed request (observation only, no timing). */
    void setObserver(Observer o) { observer_ = std::move(o); }

    /**
     * Interpose memory-side hardware (e.g. the DROPLET prefetch buffer) at
     * this boundary: when set, all traffic routes through @p p, which is
     * expected to forward to the downstream stage itself. Pass nullptr to
     * remove.
     */
    void setInterposer(Port *p) { interposer_ = p; }

    /** Swap the arbitration policy (rebuilds the admission stage). */
    void setArbitration(ArbPolicy p);

    sim::Task<void> request(MemRequest req) override;

    ArbPolicy arbitration() const { return arb_ ? arb_->policy() : ArbPolicy::Fifo; }
    Arbiter *arbiter() { return arb_.get(); }

    sim::StatGroup &stats() { return stats_; }
    const sim::StatGroup &stats() const { return stats_; }

    /** End-to-end latency histogram of one requester class. */
    const sim::Histogram &classLatency(RequesterClass c) const
    {
        return *lat_[static_cast<std::size_t>(c)];
    }

    /** Bytes moved on behalf of one requester class. */
    std::uint64_t classBytes(RequesterClass c) const
    {
        return bytes_[static_cast<std::size_t>(c)]->value();
    }

    /** Requests completed on behalf of one requester class. */
    std::uint64_t classRequests(RequesterClass c) const
    {
        return reqs_[static_cast<std::size_t>(c)]->value();
    }

    /**
     * Snapshot support. The stats StatGroup is restored in place (the
     * lat_/bytes_/reqs_ borrowed pointers stay valid); the arbiter, when
     * present, carries its own grant bookkeeping.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        stats_.saveState(out);
        out.b(arb_ != nullptr);
        if (arb_)
            arb_->saveState(out);
    }

    void
    loadState(ckpt::Source &in)
    {
        stats_.loadState(in);
        bool had_arb = in.b();
        MAPLE_CHECK(had_arb == (arb_ != nullptr), ckpt::SnapshotError,
                    "arbitration-policy mismatch in snapshot (%s)",
                    name_.c_str());
        if (arb_)
            arb_->loadState(in);
    }

  private:
    sim::EventQueue &eq_;
    std::string name_;
    Port &downstream_;
    Observer observer_;
    Port *interposer_ = nullptr;
    std::unique_ptr<Arbiter> arb_;
    sim::StatGroup stats_;
    // Borrowed pointers into stats_ (std::map storage: stable addresses),
    // indexed by class so the hot path never does a string lookup.
    std::array<sim::Histogram *, kNumRequesterClasses> lat_{};
    std::array<sim::Counter *, kNumRequesterClasses> bytes_{};
    std::array<sim::Counter *, kNumRequesterClasses> reqs_{};
};

}  // namespace maple::mem
