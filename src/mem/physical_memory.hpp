/**
 * @file
 * Functional backing store for the simulated machine's physical memory.
 *
 * Storage is allocated lazily at 4KB page granularity so multi-GB address
 * spaces cost only what the workload touches. All timing models are tag-only;
 * data always lives here ("timing-first, access-at-completion").
 */
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ckpt/serial.hpp"
#include "sim/log.hpp"
#include "sim/types.hpp"

namespace maple::mem {

inline constexpr unsigned kPageShift = 12;
inline constexpr sim::Addr kPageSize = 1ull << kPageShift;
inline constexpr sim::Addr kPageMask = kPageSize - 1;

/** Cache line geometry used throughout the system. */
inline constexpr unsigned kLineShift = 6;
inline constexpr sim::Addr kLineSize = 1ull << kLineShift;

inline constexpr sim::Addr pageBase(sim::Addr a) { return a & ~kPageMask; }
inline constexpr sim::Addr pageOffset(sim::Addr a) { return a & kPageMask; }
inline constexpr sim::Addr lineBase(sim::Addr a) { return a & ~(kLineSize - 1); }

class PhysicalMemory {
  public:
    /** @param size total physical memory size in bytes (page aligned). */
    explicit PhysicalMemory(sim::Addr size) : size_(size)
    {
        MAPLE_ASSERT((size & kPageMask) == 0, "physmem size must be page aligned");
    }

    sim::Addr size() const { return size_; }

    /** Copy @p len bytes at physical address @p paddr into @p out. */
    void
    read(sim::Addr paddr, void *out, size_t len) const
    {
        checkRange(paddr, len);
        auto *dst = static_cast<std::uint8_t *>(out);
        while (len > 0) {
            size_t chunk = chunkLen(paddr, len);
            const Page *pg = findPage(resolve(paddr));
            if (pg) {
                std::memcpy(dst, pg->data + pageOffset(paddr), chunk);
            } else {
                std::memset(dst, 0, chunk);  // untouched memory reads as zero
            }
            paddr += chunk;
            dst += chunk;
            len -= chunk;
        }
    }

    /** Copy @p len bytes from @p in to physical address @p paddr. */
    void
    write(sim::Addr paddr, const void *in, size_t len)
    {
        checkRange(paddr, len);
        auto *src = static_cast<const std::uint8_t *>(in);
        while (len > 0) {
            size_t chunk = chunkLen(paddr, len);
            Page &pg = touchPage(resolve(paddr));
            std::memcpy(pg.data + pageOffset(paddr), src, chunk);
            paddr += chunk;
            src += chunk;
            len -= chunk;
        }
    }

    /**
     * Page-retirement forwarding: future accesses to @p old_page land in
     * @p fresh_page. Containment remaps the afflicted frame out of every
     * page table, but a request that translated *before* the TLB shootdown
     * still carries the old physical address (a drained store-buffer entry,
     * an in-flight fill). A retired frame is never reused, so forwarding
     * those stragglers to the replacement frame is equivalent to their
     * having completed before the copy -- no store is silently lost.
     * Call only after the old frame's contents were copied to @p fresh_page.
     */
    void
    retireFrameTo(sim::Addr old_page, sim::Addr fresh_page)
    {
        MAPLE_ASSERT(pageBase(old_page) == old_page &&
                         pageBase(fresh_page) == fresh_page,
                     "frame redirects are page granular");
        // Flatten chains at insert so resolve() stays a single hop even
        // when a replacement frame is itself retired later.
        for (auto &[from, to] : redirects_)
            if (to == old_page)
                to = fresh_page;
        redirects_[old_page] = fresh_page;
    }

    template <typename T>
    T
    readScalar(sim::Addr paddr) const
    {
        T v;
        read(paddr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeScalar(sim::Addr paddr, T v)
    {
        write(paddr, &v, sizeof(T));
    }

    std::uint64_t readU64(sim::Addr paddr) const { return readScalar<std::uint64_t>(paddr); }
    void writeU64(sim::Addr paddr, std::uint64_t v) { writeScalar(paddr, v); }
    std::uint32_t readU32(sim::Addr paddr) const { return readScalar<std::uint32_t>(paddr); }
    void writeU32(sim::Addr paddr, std::uint32_t v) { writeScalar(paddr, v); }

    /** Number of physical pages actually materialized. */
    size_t residentPages() const { return pages_.size(); }

    /**
     * Snapshot support: pages are written sorted by base address so the
     * byte stream is independent of unordered_map iteration order.
     * loadState() drops every resident page first — the restored image
     * replaces anything a freshly-constructed Soc scribbled into memory.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        out.u64(size_);
        std::vector<sim::Addr> bases;
        bases.reserve(pages_.size());
        for (const auto &[base, pg] : pages_)
            bases.push_back(base);
        std::sort(bases.begin(), bases.end());
        out.u64(bases.size());
        for (sim::Addr base : bases) {
            out.u64(base);
            out.bytes(pages_.at(base)->data, kPageSize);
        }
        // Retired-frame redirects are machine state: a restored run must
        // keep forwarding stragglers exactly as the original did.
        std::vector<sim::Addr> olds;
        olds.reserve(redirects_.size());
        for (const auto &[old_page, fresh] : redirects_)
            olds.push_back(old_page);
        std::sort(olds.begin(), olds.end());
        out.u64(olds.size());
        for (sim::Addr old_page : olds) {
            out.u64(old_page);
            out.u64(redirects_.at(old_page));
        }
    }

    void
    loadState(ckpt::Source &in)
    {
        size_ = in.u64();
        pages_.clear();
        for (std::uint64_t n = in.u64(); n > 0; --n) {
            sim::Addr base = in.u64();
            auto pg = std::make_unique<Page>();
            in.bytes(pg->data, kPageSize);
            pages_[base] = std::move(pg);
        }
        redirects_.clear();
        for (std::uint64_t n = in.u64(); n > 0; --n) {
            sim::Addr old_page = in.u64();
            redirects_[old_page] = in.u64();
        }
    }

  private:
    struct Page {
        std::uint8_t data[kPageSize];
    };

    static size_t
    chunkLen(sim::Addr paddr, size_t len)
    {
        size_t to_page_end = static_cast<size_t>(kPageSize - pageOffset(paddr));
        return len < to_page_end ? len : to_page_end;
    }

    void
    checkRange(sim::Addr paddr, size_t len) const
    {
        MAPLE_ASSERT(paddr + len <= size_,
                     "physical access out of range: 0x%llx+%zu",
                     (unsigned long long)paddr, len);
    }

    /** Forward a retired frame's address to its replacement frame. */
    sim::Addr
    resolve(sim::Addr paddr) const
    {
        if (redirects_.empty())
            return paddr;
        auto it = redirects_.find(pageBase(paddr));
        return it == redirects_.end() ? paddr
                                      : it->second + pageOffset(paddr);
    }

    const Page *
    findPage(sim::Addr paddr) const
    {
        auto it = pages_.find(pageBase(paddr));
        return it == pages_.end() ? nullptr : it->second.get();
    }

    Page &
    touchPage(sim::Addr paddr)
    {
        auto &slot = pages_[pageBase(paddr)];
        if (!slot) {
            slot = std::make_unique<Page>();
            std::memset(slot->data, 0, kPageSize);
        }
        return *slot;
    }

    sim::Addr size_;
    std::unordered_map<sim::Addr, std::unique_ptr<Page>> pages_;
    /** Retired frame -> replacement frame (see retireFrameTo). */
    std::unordered_map<sim::Addr, sim::Addr> redirects_;
};

}  // namespace maple::mem
