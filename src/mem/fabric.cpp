#include "mem/fabric.hpp"

#include <cstdlib>

#include "sim/error.hpp"

namespace maple::mem {

const char *
requesterClassName(RequesterClass c)
{
    switch (c) {
    case RequesterClass::Core: return "core";
    case RequesterClass::MapleConsume: return "maple_consume";
    case RequesterClass::MapleProduce: return "maple_produce";
    case RequesterClass::Ptw: return "ptw";
    case RequesterClass::Prefetch: return "prefetch";
    case RequesterClass::Mmio: return "mmio";
    case RequesterClass::Coherence: return "coherence";
    case RequesterClass::kCount: break;
    }
    return "?";
}

const char *
arbPolicyName(ArbPolicy p)
{
    switch (p) {
    case ArbPolicy::Fifo: return "fifo";
    case ArbPolicy::RoundRobinByClass: return "rr";
    case ArbPolicy::CorePriority: return "core-priority";
    }
    return "?";
}

std::optional<ArbPolicy>
parseArbPolicy(std::string_view s)
{
    if (s == "fifo")
        return ArbPolicy::Fifo;
    if (s == "rr" || s == "round-robin" || s == "round-robin-by-class")
        return ArbPolicy::RoundRobinByClass;
    if (s == "core-priority" || s == "core")
        return ArbPolicy::CorePriority;
    return std::nullopt;
}

ArbPolicy
arbPolicyFromEnv(const char *env, ArbPolicy fallback)
{
    const char *v = std::getenv(env);
    if (!v || !*v)
        return fallback;
    auto p = parseArbPolicy(v);
    if (!p)
        MAPLE_THROW(sim::ConfigError,
                    "%s: unknown arbitration policy \"%s\" "
                    "(expected fifo | rr | core-priority)",
                    env, v);
    return *p;
}

Arbiter::Arbiter(sim::EventQueue &eq, std::string name, ArbPolicy policy,
                 unsigned flit_bytes)
    : eq_(eq), name_(std::move(name)), policy_(policy), flit_bytes_(flit_bytes)
{
    MAPLE_ASSERT(policy != ArbPolicy::Fifo,
                 "fifo stages keep a null Arbiter; never construct one");
    MAPLE_ASSERT(flit_bytes_ > 0);
}

unsigned
Arbiter::occupancy(std::uint32_t size) const
{
    // Header flit + payload flits: the port ingests one flit per cycle.
    return 1 + (size + flit_bytes_ - 1) / flit_bytes_;
}

sim::Task<void>
Arbiter::admit(const MemRequest &req)
{
    // Copy before any suspension: the reference is only guaranteed for the
    // synchronous prefix of this coroutine.
    unsigned c = static_cast<unsigned>(req.cls);
    unsigned occ = occupancy(req.size);
    if (eq_.now() >= next_free_ && waiting_count_ == 0) {
        // Uncontended: grant in place, occupying the port for our flits.
        next_free_ = eq_.now() + occ;
        ++grants_[c];
        ++total_grants_;
        rr_next_ = (c + 1) % kNumRequesterClasses;
        co_return;
    }
    sim::Cycle enq = eq_.now();
    waiting_[c].push_back(Waiter{sim::Signal{}, occ});
    sim::Signal sig = waiting_[c].back().sig;
    ++waiting_count_;
    if (!pump_running_) {
        pump_running_ = true;
        sim::spawnDetached(eq_, pump());
    }
    co_await sig;
    wait_cycles_ += eq_.now() - enq;
}

unsigned
Arbiter::pick()
{
    // core-priority serves demand agents strictly before MAPLE's decoupled
    // streams, which can always absorb latency (that tolerance is the point
    // of the paper); rr rotates fairly across whoever is waiting.
    static constexpr std::array<RequesterClass, kNumRequesterClasses> kPrio = {
        RequesterClass::Coherence,    RequesterClass::Core,
        RequesterClass::Ptw,          RequesterClass::Mmio,
        RequesterClass::MapleConsume, RequesterClass::MapleProduce,
        RequesterClass::Prefetch,
    };
    if (policy_ == ArbPolicy::CorePriority) {
        for (RequesterClass c : kPrio) {
            unsigned i = static_cast<unsigned>(c);
            if (!waiting_[i].empty())
                return i;
        }
    } else {
        for (unsigned k = 0; k < kNumRequesterClasses; ++k) {
            unsigned i = (rr_next_ + k) % kNumRequesterClasses;
            if (!waiting_[i].empty())
                return i;
        }
    }
    return kNumRequesterClasses;
}

sim::Task<void>
Arbiter::pump()
{
    while (waiting_count_ > 0) {
        if (next_free_ > eq_.now())
            co_await sim::delay(eq_, next_free_ - eq_.now());
        unsigned c = pick();
        MAPLE_ASSERT(c < kNumRequesterClasses, "pump with no waiters");
        Waiter w = std::move(waiting_[c].front());
        waiting_[c].pop_front();
        --waiting_count_;
        next_free_ = eq_.now() + w.occ;
        ++grants_[c];
        ++total_grants_;
        rr_next_ = (c + 1) % kNumRequesterClasses;
        w.sig.set({});
    }
    pump_running_ = false;
}

PortInterposer::PortInterposer(sim::EventQueue &eq, std::string name,
                               Port &downstream, ArbPolicy arb)
    : eq_(eq), name_(std::move(name)), downstream_(downstream),
      stats_(name_)
{
    for (unsigned i = 0; i < kNumRequesterClasses; ++i) {
        auto c = static_cast<RequesterClass>(i);
        std::string cls = requesterClassName(c);
        lat_[i] = &stats_.histogram("latency." + cls, 32.0, 64);
        bytes_[i] = &stats_.counter("bytes." + cls);
        reqs_[i] = &stats_.counter("requests." + cls);
    }
    setArbitration(arb);
}

void
PortInterposer::setArbitration(ArbPolicy p)
{
    if (p == ArbPolicy::Fifo)
        arb_.reset();
    else
        arb_ = std::make_unique<Arbiter>(eq_, name_, p);
}

sim::Task<void>
PortInterposer::request(MemRequest req)
{
    if (arb_)
        co_await arb_->admit(req);
    if (interposer_)
        co_await interposer_->request(req);
    else
        co_await downstream_.request(req);
    auto i = static_cast<std::size_t>(req.cls);
    lat_[i]->sample(static_cast<double>(eq_.now() - req.issue_cycle));
    bytes_[i]->inc(req.size);
    reqs_[i]->inc();
    if (observer_)
        observer_(req);
}

}  // namespace maple::mem
