/**
 * @file
 * Non-blocking, set-associative, write-back/write-allocate cache with MSHRs.
 *
 * Timing-only (tag array + LRU state); data stays in PhysicalMemory. Used for
 * the per-core L1D, the OpenPiton-style L1.5 stage and the shared LLC (L2).
 * Exposes a prefetch() entry point used by the software-prefetch baseline,
 * the DROPLET model and MAPLE's speculative LLC prefetches.
 */
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/physical_memory.hpp"
#include "mem/port.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace maple::mem {

struct CacheParams {
    std::string name = "cache";
    std::uint32_t size_bytes = 8 * 1024;
    std::uint32_t assoc = 4;
    sim::Cycle hit_latency = 2;
    std::uint32_t mshrs = 16;
    sim::TileId tile = 0;  ///< tile stamped on self-originated prefetches
};

class Cache : public Port {
  public:
    Cache(sim::EventQueue &eq, CacheParams params, Port &downstream);

    /** Timed access; fills and writebacks inherit the request's identity. */
    sim::Task<void> request(MemRequest req) override;

    /** Fire-and-forget prefetch of the line containing @p paddr. */
    void prefetch(sim::Addr paddr);

    /** True when the line containing @p paddr is present (no LRU update). */
    bool probe(sim::Addr paddr) const;

    /** Drop all lines (no writeback; tests only). */
    void invalidateAll();

    const CacheParams &params() const { return params_; }
    sim::StatGroup &stats() { return stats_; }
    const sim::StatGroup &stats() const { return stats_; }

    std::uint64_t demandHits() const { return stats_.counterValue("demand_hits"); }
    std::uint64_t demandMisses() const { return stats_.counterValue("demand_misses"); }

    /** MSHRs currently tracking an in-flight fill (telemetry probe). */
    std::size_t mshrsInUse() const { return mshrs_.size(); }

    /**
     * Snapshot support. Only valid at a quiesced point: with no in-flight
     * fills the MSHR table is empty and the restorable state is the tag
     * array, the LRU clock and the stats.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        MAPLE_ASSERT(mshrs_.empty(), "snapshot with in-flight cache fills");
        out.u64(num_sets_);
        out.u64(params_.assoc);
        for (const auto &set : sets_) {
            for (const Way &w : set) {
                out.u64(w.tag);
                out.b(w.valid);
                out.b(w.dirty);
                out.u64(w.lru);
            }
        }
        out.u64(lru_clock_);
        stats_.saveState(out);
        out.u32(tr_miss_);  // cached lane-group id (tracer table round-trips)
    }

    void
    loadState(ckpt::Source &in)
    {
        MAPLE_ASSERT(mshrs_.empty(), "restore with in-flight cache fills");
        std::uint64_t sets = in.u64();
        std::uint64_t assoc = in.u64();
        MAPLE_CHECK(sets == num_sets_ && assoc == params_.assoc,
                    ckpt::SnapshotError,
                    "cache geometry mismatch in snapshot (%s)",
                    params_.name.c_str());
        for (auto &set : sets_) {
            for (Way &w : set) {
                w.tag = in.u64();
                w.valid = in.b();
                w.dirty = in.b();
                w.lru = in.u64();
            }
        }
        lru_clock_ = in.u64();
        stats_.loadState(in);
        tr_miss_ = in.u32();
    }

  private:
    struct Way {
        sim::Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    /** One access covering a single cache line. */
    sim::Task<void> accessLine(MemRequest req, sim::Addr line);

    /** Resolve a miss on @p line; merges into an existing MSHR if any. */
    sim::Task<void> handleMiss(MemRequest req, sim::Addr line, bool &dropped);

    /** Active tracer or nullptr; lazily creates the miss lane group. */
    trace::TraceManager *tracer();

    size_t setIndex(sim::Addr line) const;
    Way *lookup(sim::Addr line);
    const Way *lookupConst(sim::Addr line) const;
    void touch(Way &way);
    Way &selectVictim(size_t set);
    void wakeMshrWaiters();

    sim::EventQueue &eq_;
    CacheParams params_;
    Port &downstream_;
    size_t num_sets_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t lru_clock_ = 1;
    std::unordered_map<sim::Addr, sim::Signal> mshrs_;
    sim::Signal mshr_wait_;
    sim::StatGroup stats_;
    trace::TraceManager::LaneGroupId tr_miss_ = trace::TraceManager::kNone;
};

}  // namespace maple::mem
