/**
 * @file
 * Non-blocking, set-associative, write-back/write-allocate cache with MSHRs.
 *
 * Timing-only (tag array + LRU state); data stays in PhysicalMemory. Used for
 * the per-core L1D, the OpenPiton-style L1.5 stage and the shared LLC (L2).
 * Exposes a prefetch() entry point used by the software-prefetch baseline,
 * the DROPLET model and MAPLE's speculative LLC prefetches.
 *
 * Two personalities share the tag array:
 *  - Legacy (default): latency-only. Misses fill from the downstream port,
 *    dirty victims write back to it, and no other cache exists as far as
 *    this one is concerned.
 *  - Coherent (after attachCoherence()): every line carries an MSI state, a
 *    transient-state table layered on the MSHRs tracks in-flight IS/IM/SM
 *    transactions, and misses/upgrades go through the line's home directory
 *    (CoherenceFabric::fetch) instead of the downstream port. Dirty (M)
 *    victims emit PutM writebacks through their home; S victims evict
 *    silently. The protocol side (cohTakeLine / cohDowngrade / cohInstall)
 *    is driven by the directory with the line's home lock held.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "mem/directory.hpp"
#include "mem/physical_memory.hpp"
#include "mem/port.hpp"
#include "mem/resil.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace maple::mem {

struct CacheParams {
    std::string name = "cache";
    std::uint32_t size_bytes = 8 * 1024;
    std::uint32_t assoc = 4;
    sim::Cycle hit_latency = 2;
    std::uint32_t mshrs = 16;
    sim::TileId tile = 0;  ///< tile stamped on self-originated prefetches
};

class Cache : public Port, public CoherentCache {
  public:
    Cache(sim::EventQueue &eq, CacheParams params, Port &downstream);

    /** Timed access; fills and writebacks inherit the request's identity. */
    sim::Task<void> request(MemRequest req) override;

    /** Fire-and-forget prefetch of the line containing @p paddr. */
    void prefetch(sim::Addr paddr);

    /** True when the line containing @p paddr is present (no LRU update). */
    bool probe(sim::Addr paddr) const;

    /**
     * Drop all clean lines. Throws sim::FatalError if any line is dirty
     * (legacy) or held in M (coherent): silently discarding modified data
     * corrupts the modeled memory image -- use flushAll() first.
     */
    void invalidateAll();

    /** Write back every dirty/M line, then drop everything. */
    sim::Task<void> flushAll();

    /**
     * Join @p fabric as a coherent cache: misses become GetS/GetM through
     * the home directories and this cache starts answering the protocol
     * (CoherentCache). Call once, before any traffic.
     */
    void attachCoherence(CoherenceFabric &fabric);

    bool coherent() const { return fabric_ != nullptr; }

    /**
     * Attach the soft-error resilience model (mem/resil.hpp). @p l1_role
     * selects the reaction to poison: an L1-role cache runs machine-check
     * containment when a core/PTW demand touches a poisoned line, an
     * LLC-role cache forwards the poison with the data (and also consults
     * the memory-side backing-poison set, since recalled dirty data reaches
     * it through detached writebacks that carry no metadata). The role also
     * picks the BitFlip fault class this cache's ECC draws from.
     */
    void
    setResil(ResilManager *resil, bool l1_role)
    {
        resil_ = resil;
        resil_l1_ = l1_role;
        resil_cls_ = l1_role ? fault::FaultClass::BitFlipL1
                             : fault::FaultClass::BitFlipLlc;
        resil_st_ = l1_role ? ResilStructure::L1 : ResilStructure::Llc;
    }

    /**
     * Containment flush: drop any copy of @p line, dirty or poisoned
     * included -- the functional image lives in PhysicalMemory and the page
     * is about to be retired, so no modeled data is lost. Used on caches the
     * directory cannot reach (legacy mode, and the LLC slices behind it).
     */
    void resilDropLine(sim::Addr line);

    /** True when this cache holds @p line and the copy is poisoned. */
    bool
    linePoisoned(sim::Addr line) const
    {
        const Way *w = lookupConst(line);
        return w != nullptr && w->poisoned;
    }

    /// @name CoherentCache (driven by the home directory, lock held)
    /// @{
    const std::string &cohName() const override { return params_.name; }
    sim::TileId cohTile() const override { return params_.tile; }
    MsiState cohTakeLine(sim::Addr line) override;
    bool cohDowngrade(sim::Addr line) override;
    MsiState cohState(sim::Addr line) const override;
    void cohInstall(sim::Addr line, MsiState st, const MemRequest &req) override;
    /// @}

    const CacheParams &params() const { return params_; }
    sim::StatGroup &stats() { return stats_; }
    const sim::StatGroup &stats() const { return stats_; }

    std::uint64_t demandHits() const { return stats_.counterValue("demand_hits"); }
    std::uint64_t demandMisses() const { return stats_.counterValue("demand_misses"); }

    /** MSHRs currently tracking an in-flight fill (telemetry probe). */
    std::size_t mshrsInUse() const { return mshrs_.size(); }

    /**
     * Snapshot support. Only valid at a quiesced point: with no in-flight
     * fills the MSHR table is empty and the restorable state is the tag
     * array, the LRU clock and the stats. Coherent caches additionally
     * write the per-line MSI state (the transient table must be empty).
     */
    void
    saveState(ckpt::Sink &out) const
    {
        MAPLE_ASSERT(mshrs_.empty(), "snapshot with in-flight cache fills");
        MAPLE_ASSERT(tstate_.empty(), "snapshot with transient MSI state");
        out.u64(num_sets_);
        out.u64(params_.assoc);
        for (const auto &set : sets_) {
            for (const Way &w : set) {
                out.u64(w.tag);
                out.b(w.valid);
                out.b(w.dirty);
                out.b(w.poisoned);
                out.u64(w.lru);
                if (fabric_)
                    out.u8(static_cast<std::uint8_t>(w.coh));
            }
        }
        out.u64(lru_clock_);
        // The recently-invalidated ring classifies coherence misses; it is
        // real machine state (a restored run must bucket the same misses
        // the same way), so it round-trips with the tags.
        for (sim::Addr a : recent_inv_)
            out.u64(a);
        out.u64(recent_inv_next_);
        stats_.saveState(out);
        out.u32(tr_miss_);  // cached lane-group id (tracer table round-trips)
    }

    void
    loadState(ckpt::Source &in)
    {
        MAPLE_ASSERT(mshrs_.empty(), "restore with in-flight cache fills");
        MAPLE_ASSERT(tstate_.empty(), "restore with transient MSI state");
        std::uint64_t sets = in.u64();
        std::uint64_t assoc = in.u64();
        MAPLE_CHECK(sets == num_sets_ && assoc == params_.assoc,
                    ckpt::SnapshotError,
                    "cache geometry mismatch in snapshot (%s)",
                    params_.name.c_str());
        for (auto &set : sets_) {
            for (Way &w : set) {
                w.tag = in.u64();
                w.valid = in.b();
                w.dirty = in.b();
                w.poisoned = in.b();
                w.lru = in.u64();
                if (fabric_) {
                    w.coh = static_cast<MsiState>(in.u8());
                    if (w.valid && w.coh != MsiState::I) {
                        if (CoherenceChecker *ck = fabric_->checker())
                            ck->seedHolder(coh_id_, w.tag, w.coh);
                    }
                }
            }
        }
        lru_clock_ = in.u64();
        for (sim::Addr &a : recent_inv_)
            a = in.u64();
        recent_inv_next_ = static_cast<unsigned>(in.u64());
        stats_.loadState(in);
        tr_miss_ = in.u32();
    }

  private:
    struct Way {
        sim::Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool poisoned = false;  ///< data carries an uncorrectable ECC error
        std::uint64_t lru = 0;
        MsiState coh = MsiState::I;  ///< stable MSI state (coherent mode)
    };

    /** One access covering a single cache line (legacy personality). */
    sim::Task<void> accessLine(MemRequest req, sim::Addr line);

    /** One access covering a single cache line, protocol-correct: retries
     *  from scratch after every wait, since the line can be invalidated or
     *  downgraded between any two resumptions. */
    sim::Task<void> accessLineCoherent(MemRequest req, sim::Addr line);

    /** Resolve a miss on @p line; merges into an existing MSHR if any. */
    sim::Task<void> handleMiss(MemRequest req, sim::Addr line, bool &dropped);

    /** Active tracer or nullptr; lazily creates the miss lane group. */
    trace::TraceManager *tracer();

    CoherenceChecker *
    checker() const
    {
        return fabric_ ? fabric_->checker() : nullptr;
    }

    size_t setIndex(sim::Addr line) const;
    Way *lookup(sim::Addr line);
    const Way *lookupConst(sim::Addr line) const;
    void touch(Way &way);
    Way &selectVictim(size_t set);
    /** Victim choice that avoids ripping out a line mid-upgrade (SM). */
    Way &selectVictimCoherent(size_t set);
    void wakeMshrWaiters();
    void noteInvalidated(sim::Addr line);

    /**
     * ECC draw + poison bookkeeping for a hit on @p w, shared by both
     * personalities. Returns Corrected when the caller must model the
     * correction bubble (delay correctPenalty() and retry the lookup --
     * anything can change across the wait). A fresh Uncorrectable marks the
     * way poisoned; @p w is then examined like pre-existing poison.
     */
    EccOutcome resilCheckHit(Way &w, const MemRequest &req, sim::Addr line);

    /** True when a poisoned serve to @p req must trigger containment
     *  instead of forwarding the poison (L1 role, core/PTW demand). */
    bool resilShouldContain(const MemRequest &req) const;

    sim::EventQueue &eq_;
    CacheParams params_;
    Port &downstream_;
    size_t num_sets_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t lru_clock_ = 1;
    std::unordered_map<sim::Addr, sim::Signal> mshrs_;
    sim::Signal mshr_wait_;
    sim::StatGroup stats_;
    trace::TraceManager::LaneGroupId tr_miss_ = trace::TraceManager::kNone;

    ResilManager *resil_ = nullptr;
    bool resil_l1_ = false;
    fault::FaultClass resil_cls_ = fault::FaultClass::BitFlipLlc;
    ResilStructure resil_st_ = ResilStructure::Llc;

    CoherenceFabric *fabric_ = nullptr;
    unsigned coh_id_ = 0;
    /** In-flight protocol transactions, keyed by line (IS / IM / SM). */
    std::unordered_map<sim::Addr, TransientState> tstate_;
    /** Ring of recently-invalidated lines: a miss that matches one is a
     *  coherence miss (counter "coherence_misses"), not a capacity miss. */
    std::array<sim::Addr, 64> recent_inv_{};
    unsigned recent_inv_next_ = 0;
};

}  // namespace maple::mem
