/**
 * @file
 * The typed memory-request fabric: every memory-side component (caches,
 * DRAM, NoC ports, interposers) implements mem::Port and exchanges
 * first-class mem::MemRequest messages instead of positional
 * (paddr, size, kind) arguments.
 *
 * A MemRequest carries *who* is asking (requester tile + class) alongside
 * the what (address, size, kind), a monotonically-assigned transaction id,
 * the issue cycle, and an intrusive metadata slot. Stages forward the
 * message downstream -- possibly rewriting its extent (an L1 miss becomes a
 * line fill) while preserving the originator's identity -- so any point in
 * the hierarchy can attribute latency, bandwidth and injected faults to the
 * core, MAPLE pipeline, page-table walker or prefetcher that caused the
 * traffic. Timing and data stay decoupled: request() models *when* the
 * access completes; the requester performs the functional read/write
 * against PhysicalMemory at completion time.
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace maple::mem {

/** Kind of access, for stats and for prefetch-aware components. */
enum class AccessKind : std::uint8_t {
    Read,
    Write,
    Prefetch,  ///< fill without a demand waiter
};

/**
 * Who originated a request. MAPLE's traffic is deliberately unprivileged
 * (paper §4): it shares the NoC/LLC/DRAM with the cores, so the *only* way
 * to arbitrate or attribute per-agent is to carry the class in the message.
 */
enum class RequesterClass : std::uint8_t {
    Core,          ///< core demand loads/stores/atomics
    MapleConsume,  ///< MAPLE streaming its own inputs (LIMA index chunks)
    MapleProduce,  ///< MAPLE pointer-produce fetches and remote AMOs
    Ptw,           ///< hardware page-table walks (core or device MMU)
    Prefetch,      ///< speculative fills with no demand waiter
    Mmio,          ///< core-to-device MMIO packets on the NoC
    Coherence,     ///< directory-originated protocol traffic (Inv, acks, fwds)
    kCount
};

inline constexpr unsigned kNumRequesterClasses =
    static_cast<unsigned>(RequesterClass::kCount);

/** Bit in a requester-class mask (fault keying, arbitration filters). */
inline constexpr std::uint32_t
requesterClassBit(RequesterClass c)
{
    return 1u << static_cast<unsigned>(c);
}

/** Mask selecting every requester class. */
inline constexpr std::uint32_t kAllRequesterClasses =
    (1u << kNumRequesterClasses) - 1;

const char *requesterClassName(RequesterClass c);

/**
 * Intrusive metadata slot riding with a request through the fabric. A stage
 * that must attach per-request state while the request is in flight (an
 * open trace-span cookie, tags for faults injected en route) writes it here
 * instead of keeping a side table keyed by transaction id. The storage
 * lives in the originator's coroutine frame, so attaching costs nothing.
 */
struct RequestMeta {
    std::uint64_t trace_span = 0;  ///< opaque span cookie (trace subsystem)
    std::uint32_t fault_tags = 0;  ///< bitmask of fault::FaultClass hit en route
    /**
     * First-class poison bit (mem/resil.hpp): set when any stage served data
     * from a line whose ECC reported an uncorrectable error. Consumers react
     * by structure: cores trigger machine-check containment, MAPLE poisons
     * the queue slot (MapleStatus::Poisoned) and lets the recovery driver
     * handle it. The detecting structure also ORs its fault::FaultClass bit
     * into fault_tags so the consumer can name the poison's origin.
     */
    bool poison = false;
    void *scratch = nullptr;       ///< stage-defined extension slot
};

/**
 * One memory transaction. Constructed once at the origin (make()), then
 * forwarded -- and possibly narrowed/widened via child() -- through every
 * stage between the requester and DRAM.
 */
struct MemRequest {
    sim::Addr paddr = 0;
    std::uint32_t size = 0;
    AccessKind kind = AccessKind::Read;
    RequesterClass cls = RequesterClass::Core;
    sim::TileId tile = 0;          ///< tile of the originating agent
    std::uint64_t id = 0;          ///< monotonic per-EventQueue transaction id
    sim::Cycle issue_cycle = 0;    ///< cycle the origin issued the request
    RequestMeta *meta = nullptr;   ///< optional intrusive metadata slot

    /** Build an origin request: stamps the issue cycle and allocates an id. */
    static MemRequest
    make(sim::EventQueue &eq, RequesterClass cls, sim::TileId tile,
         sim::Addr paddr, std::uint32_t size, AccessKind kind,
         RequestMeta *meta = nullptr)
    {
        MemRequest r;
        r.paddr = paddr;
        r.size = size;
        r.kind = kind;
        r.cls = cls;
        r.tile = tile;
        r.id = eq.allocTicket();
        r.issue_cycle = eq.now();
        r.meta = meta;
        return r;
    }

    /**
     * Derive a same-transaction request with a new extent: identity (class,
     * tile, id, issue cycle, metadata) is preserved so downstream stages
     * still attribute the traffic to the original requester. Used for line
     * fills, writebacks and other stage-internal transformations.
     */
    MemRequest
    child(sim::Addr new_paddr, std::uint32_t new_size, AccessKind new_kind) const
    {
        MemRequest r = *this;
        r.paddr = new_paddr;
        r.size = new_size;
        r.kind = new_kind;
        return r;
    }
};

/**
 * Timing interface implemented by every memory-side stage. The returned
 * task completes when the request would have finished at this stage.
 */
class Port {
  public:
    virtual ~Port() = default;

    virtual sim::Task<void> request(MemRequest req) = 0;
};

/**
 * Fixed-latency stage, useful for tests and for modeling simple pipeline
 * segments. When @p bytes_per_cycle is nonzero the port also serializes
 * transfers -- a request occupies the port for ceil(size / bytes_per_cycle)
 * cycles, so multi-line accesses queue behind each other instead of being
 * free. bytes_per_cycle == 0 keeps the historical pure-latency behavior.
 */
class FixedLatencyMem : public Port {
  public:
    FixedLatencyMem(sim::EventQueue &eq, sim::Cycle latency,
                    unsigned bytes_per_cycle = 0)
        : eq_(eq), latency_(latency), bytes_per_cycle_(bytes_per_cycle)
    {
    }

    sim::Task<void>
    request(MemRequest req) override
    {
        if (bytes_per_cycle_ == 0) {
            co_await sim::delay(eq_, latency_);
            co_return;
        }
        sim::Cycle transfer =
            (req.size + bytes_per_cycle_ - 1) / bytes_per_cycle_;
        sim::Cycle start = std::max(eq_.now(), busy_until_);
        busy_until_ = start + transfer;
        co_await sim::delay(eq_, (busy_until_ + latency_) - eq_.now());
    }

  private:
    sim::EventQueue &eq_;
    sim::Cycle latency_;
    unsigned bytes_per_cycle_;
    sim::Cycle busy_until_ = 0;
};

}  // namespace maple::mem
