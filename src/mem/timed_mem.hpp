/**
 * @file
 * Timing interface implemented by every memory-side component (caches, DRAM,
 * NoC ports). Timing and data are decoupled: access() models *when* a request
 * completes; the requester performs the functional read/write against
 * PhysicalMemory at completion time.
 */
#pragma once

#include <cstdint>

#include "sim/coro.hpp"
#include "sim/types.hpp"

namespace maple::mem {

/** Kind of access, for stats and for prefetch-aware components. */
enum class AccessKind : std::uint8_t {
    Read,
    Write,
    Prefetch,  ///< fill without a demand waiter
};

class TimedMem {
  public:
    virtual ~TimedMem() = default;

    /**
     * Perform a timed access to @p paddr of @p size bytes.
     * The returned task completes when the access would have finished.
     */
    virtual sim::Task<void> access(sim::Addr paddr, std::uint32_t size, AccessKind kind) = 0;
};

/** Fixed-latency wrapper, useful for tests and for modeling simple stages. */
class FixedLatencyMem : public TimedMem {
  public:
    FixedLatencyMem(sim::EventQueue &eq, sim::Cycle latency) : eq_(eq), latency_(latency) {}

    sim::Task<void>
    access(sim::Addr, std::uint32_t, AccessKind) override
    {
        co_await sim::delay(eq_, latency_);
    }

  private:
    sim::EventQueue &eq_;
    sim::Cycle latency_;
};

}  // namespace maple::mem
