#include "mem/page_table.hpp"

#include "sim/log.hpp"

namespace maple::mem {

PageTable::PageTable(PhysicalMemory &pm, FrameAlloc alloc)
    : pm_(pm), alloc_(std::move(alloc))
{
    MAPLE_ASSERT(alloc_ != nullptr, "PageTable needs a frame allocator");
    root_ = alloc_();
    MAPLE_ASSERT((root_ & kPageMask) == 0, "root frame not page aligned");
}

sim::Addr
PageTable::pteAddr(sim::Addr table, sim::Addr vaddr, unsigned level) const
{
    return table + vpnField(vaddr, level) * sizeof(std::uint64_t);
}

void
PageTable::map(sim::Addr vaddr, sim::Addr paddr, bool writable)
{
    MAPLE_ASSERT((vaddr & kPageMask) == 0 && (paddr & kPageMask) == 0,
                 "map requires page-aligned addresses");
    sim::Addr table = root_;
    for (unsigned level = kPtLevels - 1; level > 0; --level) {
        sim::Addr pa = pteAddr(table, vaddr, level);
        Pte pte{pm_.readU64(pa)};
        if (!pte.valid()) {
            sim::Addr next = alloc_();
            ++table_pages_;
            pm_.writeU64(pa, Pte::makePointer(next).raw);
            table = next;
        } else {
            MAPLE_ASSERT(!pte.leaf(), "huge pages not supported");
            table = pte.paddrBase();
        }
    }
    pm_.writeU64(pteAddr(table, vaddr, 0), Pte::makeLeaf(paddr, writable).raw);
}

void
PageTable::unmap(sim::Addr vaddr)
{
    sim::Addr table = root_;
    for (unsigned level = kPtLevels - 1; level > 0; --level) {
        Pte pte{pm_.readU64(pteAddr(table, vaddr, level))};
        if (!pte.valid())
            return;
        table = pte.paddrBase();
    }
    pm_.writeU64(pteAddr(table, vaddr, 0), 0);
}

std::optional<Pte>
PageTable::walk(sim::Addr vaddr) const
{
    sim::Addr table = root_;
    for (unsigned level = kPtLevels; level-- > 0;) {
        Pte pte{pm_.readU64(pteAddr(table, vaddr, level))};
        if (!pte.valid())
            return std::nullopt;
        if (pte.leaf()) {
            MAPLE_ASSERT(level == 0, "huge pages not supported");
            return pte;
        }
        table = pte.paddrBase();
    }
    return std::nullopt;
}

std::optional<sim::Addr>
PageTable::translate(sim::Addr vaddr, Perms perms) const
{
    auto pte = walk(vaddr);
    if (!pte || !pte->readable() || (perms.write && !pte->writable()))
        return std::nullopt;
    return pte->paddrBase() | pageOffset(vaddr);
}

}  // namespace maple::mem
