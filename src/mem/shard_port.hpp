/**
 * @file
 * Cross-domain port proxy: the mem::Port cut point between two simulation
 * domains of a sim::ShardedEngine (soc/grid.hpp wires one per directed
 * chip-to-chip link).
 *
 * A request issued in the source domain never touches the target domain's
 * state directly. Instead the proxy posts a mailbox message that, one link
 * latency later, spawns the real access against the target port *inside the
 * destination domain*; the completion travels back the same way and fulfils
 * a Signal the issuing coroutine is parked on. Both hops carry the declared
 * link latency, which is exactly the lookahead bound that lets the engine
 * run both domains concurrently: nothing either side does within a quantum
 * can reach the other until the next quantum boundary.
 *
 * Timing model: a fixed-latency inter-chip hop per direction (think serdes
 * link, not the on-chip mesh — contention is modeled by whatever target
 * port the request lands on, e.g. the remote SoC's LLC front-end).
 */
#pragma once

#include "mem/port.hpp"
#include "sim/coro.hpp"
#include "sim/sharded.hpp"

namespace maple::mem {

class CrossDomainPort : public Port {
  public:
    /**
     * Wire a proxy in domain @p src whose requests execute against
     * @p target, which lives in domain @p dst. Declares @p link_latency on
     * the engine (both hops carry it), binding the engine's lookahead.
     */
    CrossDomainPort(sim::ShardedEngine &engine,
                    sim::ShardedEngine::DomainId src, sim::EventQueue &src_eq,
                    sim::ShardedEngine::DomainId dst, sim::EventQueue &dst_eq,
                    Port &target, sim::Cycle link_latency)
        : engine_(engine), src_(src), dst_(dst), src_eq_(src_eq),
          dst_eq_(dst_eq), target_(target), latency_(link_latency)
    {
        engine_.declareChannelLatency(link_latency);
    }

    sim::Task<void>
    request(MemRequest req) override
    {
        sim::Signal done;
        // Deliver into the destination domain one link hop from now; the
        // callback runs on whichever host thread owns dst in that window
        // and only touches dst state.
        engine_.post(src_, dst_, src_eq_.now() + latency_,
                     [this, req, done] {
                         sim::spawnDetached(dst_eq_, serve(req, done));
                     });
        co_await done;
    }

    sim::Cycle linkLatency() const { return latency_; }

  private:
    sim::Task<void>
    serve(MemRequest req, sim::Signal done)
    {
        co_await target_.request(req);
        // The response hop: fulfil the issuer's signal back in the source
        // domain. Signal::set resumes waiters inline, so the wakeup executes
        // as a src-domain event at the delivery cycle.
        engine_.post(dst_, src_, dst_eq_.now() + latency_,
                     [done] { done.set(sim::Unit{}); });
    }

    sim::ShardedEngine &engine_;
    sim::ShardedEngine::DomainId src_;
    sim::ShardedEngine::DomainId dst_;
    sim::EventQueue &src_eq_;
    sim::EventQueue &dst_eq_;
    Port &target_;
    sim::Cycle latency_;
};

}  // namespace maple::mem
