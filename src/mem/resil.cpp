#include "mem/resil.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "mem/physical_memory.hpp"
#include "sim/log.hpp"

namespace maple::mem {

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *p = std::getenv(name);
    if (!p || !*p)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (!end || *end != '\0') {
        MAPLE_WARN("ignoring bad %s '%s'", name, p);
        return fallback;
    }
    return v;
}

}  // namespace

void
ResilConfig::mergeEnv()
{
    if (const char *p = std::getenv("MAPLE_ECC"); p && *p) {
        if (std::strcmp(p, "secded") == 0)
            ecc = true;
        else if (std::strcmp(p, "off") == 0 || std::strcmp(p, "0") == 0)
            ecc = false;
        else
            MAPLE_WARN("ignoring bad MAPLE_ECC '%s' (want off|secded)", p);
    }
    correct_latency = envU64("MAPLE_ECC_CORRECT_LATENCY", correct_latency);
    scrub_interval = envU64("MAPLE_SCRUB_INTERVAL", scrub_interval);
    unsigned batch =
        static_cast<unsigned>(envU64("MAPLE_SCRUB_BATCH", scrub_batch));
    scrub_batch = batch > 0 ? batch : scrub_batch;
}

fault::FaultClass
poisonCause(const RequestMeta *m, fault::FaultClass fallback)
{
    static constexpr fault::FaultClass kBitFlips[] = {
        fault::FaultClass::BitFlipL1, fault::FaultClass::BitFlipLlc,
        fault::FaultClass::BitFlipDir, fault::FaultClass::BitFlipDram};
    if (m) {
        for (fault::FaultClass c : kBitFlips) {
            if (m->fault_tags & fault::faultClassBit(c))
                return c;
        }
    }
    return fallback;
}

namespace {

/** Structure a BitFlip* cause names (MCA encoding of consumed poison). */
ResilStructure
structureOfCause(fault::FaultClass c)
{
    switch (c) {
      case fault::FaultClass::BitFlipL1:   return ResilStructure::L1;
      case fault::FaultClass::BitFlipDir:  return ResilStructure::Directory;
      case fault::FaultClass::BitFlipDram: return ResilStructure::Dram;
      default:                             return ResilStructure::Llc;
    }
}

}  // namespace

const char *
resilStructureName(ResilStructure s)
{
    switch (s) {
      case ResilStructure::L1:        return "l1";
      case ResilStructure::Llc:       return "llc";
      case ResilStructure::Directory: return "dir";
      case ResilStructure::Dram:      return "dram";
      default:                        return "?";
    }
}

ResilManager::ResilManager(sim::EventQueue &eq, ResilConfig cfg,
                           unsigned num_tiles)
    : eq_(eq), cfg_(cfg), stats_("resil"), mca_(num_tiles)
{
    for (std::size_t s = 0; s < kStructures; ++s) {
        const char *n = resilStructureName(static_cast<ResilStructure>(s));
        corrected_[s] = &stats_.counter(std::string("corrected_") + n);
        uncorrectable_[s] = &stats_.counter(std::string("uncorrectable_") + n);
    }
    containments_ = &stats_.counter("containments");
    retired_pages_ = &stats_.counter("retired_pages");
    mca_records_ = &stats_.counter("mca_records");
    scrub_passes_ = &stats_.counter("scrub_passes");
    scrub_repairs_ = &stats_.counter("scrub_repairs");
}

EccOutcome
ResilManager::check(fault::FaultClass cls, RequesterClass rc,
                    ResilStructure st, sim::Addr line, sim::TileId tile)
{
    if (!cfg_.ecc)
        return EccOutcome::Clean;
    fault::FaultInjector *f = fault::active(eq_);
    if (!f)
        return EccOutcome::Clean;
    sim::Cycle severity = f->inject(cls, rc);
    if (severity == 0)
        return EccOutcome::Clean;
    if (severity == 1) {
        // Single-bit: SECDED corrects in place. The caller models the
        // correction pipeline bubble by delaying correctPenalty() cycles;
        // the stall attribution is accounted here so every site agrees.
        corrected_[static_cast<std::size_t>(st)]->inc();
        f->chargeCycles(cls, cfg_.correct_latency);
        return EccOutcome::Corrected;
    }
    // Multi-bit: detected but uncorrectable. Latch the machine check; the
    // caller poisons the affected line (or rebuilds the directory entry).
    uncorrectable_[static_cast<std::size_t>(st)]->inc();
    recordMca(tile, st, cls, line);
    return EccOutcome::Uncorrectable;
}

void
ResilManager::markBackingPoisoned(sim::Addr line)
{
    backing_poison_.insert(line);
}

void
ResilManager::clearBackingPoisonPage(sim::Addr page_base)
{
    auto it = backing_poison_.lower_bound(page_base);
    while (it != backing_poison_.end() && *it < page_base + kPageSize)
        it = backing_poison_.erase(it);
}

void
ResilManager::recordMca(sim::TileId tile, ResilStructure st,
                        fault::FaultClass cause, sim::Addr addr)
{
    mca_records_->inc();
    McaBank &b = mca_.at(tile);
    b.count += 1;
    if (b.valid)
        return;  // sticky: first cause/addr win until software clears
    b.valid = true;
    b.structure = static_cast<std::uint8_t>(st);
    b.cause = static_cast<std::uint8_t>(cause);
    b.addr = addr;
    b.first_cycle = eq_.now();
}

sim::Task<void>
ResilManager::contain(sim::Addr line, sim::TileId tile,
                      fault::FaultClass cause)
{
    containments_->inc();
    // Latch the consumer's machine check too: detection latched the bank of
    // the tile that found the error, this records the tile that ate it.
    recordMca(tile, structureOfCause(cause), cause, line);
    if (contain_)
        co_await contain_(line, tile, cause);
    co_return;
}

void
ResilManager::kickScrub()
{
    if (scrub_running_ || cfg_.scrub_interval == 0 || !scrub_auditor_)
        return;
    scrub_running_ = true;
    sim::spawnDetached(eq_, scrubLoop());
}

sim::Task<void>
ResilManager::scrubLoop()
{
    while (true) {
        co_await sim::delay(eq_, cfg_.scrub_interval);
        // Our wake was popped before resuming: pending() == 0 means the
        // machine is otherwise idle. Stop instead of rescheduling, so the
        // run phase drains and the SoC can quiesce; the next run phase
        // kicks the loop again from the preserved cursor.
        if (eq_.pending() == 0)
            break;
        scrub_passes_->inc();
        scrub_repairs_->inc(scrub_auditor_(scrub_cursor_, cfg_.scrub_batch));
    }
    scrub_running_ = false;
}

std::uint64_t
ResilManager::correctedTotal() const
{
    std::uint64_t n = 0;
    for (const sim::Counter *c : corrected_)
        n += c->value();
    return n;
}

std::uint64_t
ResilManager::uncorrectableTotal() const
{
    std::uint64_t n = 0;
    for (const sim::Counter *c : uncorrectable_)
        n += c->value();
    return n;
}

std::string
ResilManager::summary() const
{
    std::ostringstream os;
    os << "corrected=" << correctedTotal()
       << " uncorrectable=" << uncorrectableTotal()
       << " containments=" << containments()
       << " retired_pages=" << retiredPages()
       << " backing_poisoned=" << backing_poison_.size()
       << " scrub_passes=" << scrubPasses()
       << " scrub_repairs=" << scrubRepairs();
    unsigned latched = 0;
    for (const McaBank &b : mca_)
        latched += b.valid ? 1 : 0;
    os << " mca_latched=" << latched;
    return os.str();
}

void
ResilManager::saveState(ckpt::Sink &out) const
{
    MAPLE_ASSERT(!scrub_running_, "snapshot with the scrub loop running");
    out.u64(scrub_cursor_);
    out.u64(mca_.size());
    for (const McaBank &b : mca_) {
        out.b(b.valid);
        out.u8(b.structure);
        out.u8(b.cause);
        out.u64(b.addr);
        out.u64(b.count);
        out.u64(b.first_cycle);
    }
    out.u64(backing_poison_.size());
    for (sim::Addr a : backing_poison_)  // std::set iterates sorted
        out.u64(a);
    stats_.saveState(out);
}

void
ResilManager::loadState(ckpt::Source &in)
{
    MAPLE_ASSERT(!scrub_running_, "restore with the scrub loop running");
    scrub_cursor_ = in.u64();
    const std::uint64_t tiles = in.u64();
    MAPLE_CHECK(tiles == mca_.size(), ckpt::SnapshotError,
                "resil section tile count %llu != %zu",
                (unsigned long long)tiles, mca_.size());
    for (McaBank &b : mca_) {
        b.valid = in.b();
        b.structure = in.u8();
        b.cause = in.u8();
        b.addr = in.u64();
        b.count = in.u64();
        b.first_cycle = in.u64();
    }
    backing_poison_.clear();
    for (std::uint64_t n = in.u64(); n > 0; --n)
        backing_poison_.insert(in.u64());
    stats_.loadState(in);
}

}  // namespace maple::mem
