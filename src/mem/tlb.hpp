/**
 * @file
 * Fully-associative, LRU translation lookaside buffer.
 *
 * Both the cores and each MAPLE instance embed one of these (the paper uses
 * 16 entries for both). Shootdowns from the OS arrive via invalidate()/flush().
 */
#pragma once

#include <cstdint>
#include <iterator>
#include <list>
#include <optional>
#include <unordered_map>

#include "mem/page_table.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace maple::mem {

class Tlb {
  public:
    explicit Tlb(size_t entries = 16) : capacity_(entries)
    {
        MAPLE_ASSERT(entries > 0);
    }

    /** Look up the leaf PTE for @p vaddr's page; updates LRU on hit. */
    std::optional<Pte>
    lookup(sim::Addr vaddr)
    {
        auto it = map_.find(vpnOf(vaddr));
        if (it == map_.end()) {
            misses_.inc();
            return std::nullopt;
        }
        hits_.inc();
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->pte;
    }

    /** Install a translation, evicting the LRU entry when full. */
    void
    insert(sim::Addr vaddr, Pte pte)
    {
        sim::Addr vpn = vpnOf(vaddr);
        auto it = map_.find(vpn);
        if (it != map_.end()) {
            it->second->pte = pte;
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        if (map_.size() >= capacity_) {
            map_.erase(lru_.back().vpn);
            lru_.pop_back();
            evictions_.inc();
        }
        lru_.push_front(Entry{vpn, pte});
        map_[vpn] = lru_.begin();
    }

    /** Drop the entry covering @p vaddr (TLB shootdown for one page). */
    void
    invalidate(sim::Addr vaddr)
    {
        auto it = map_.find(vpnOf(vaddr));
        if (it == map_.end())
            return;
        lru_.erase(it->second);
        map_.erase(it);
        shootdowns_.inc();
    }

    /** Drop everything (full shootdown / context switch). */
    void
    flush()
    {
        map_.clear();
        lru_.clear();
        shootdowns_.inc();
    }

    size_t size() const { return map_.size(); }
    size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Snapshot support: entries in LRU order (front = most recent). */
    void
    saveState(ckpt::Sink &out) const
    {
        out.u64(capacity_);
        out.u64(lru_.size());
        for (const Entry &e : lru_) {
            out.u64(e.vpn);
            out.u64(e.pte.raw);
        }
        hits_.saveState(out);
        misses_.saveState(out);
        evictions_.saveState(out);
        shootdowns_.saveState(out);
    }

    void
    loadState(ckpt::Source &in)
    {
        capacity_ = in.u64();
        lru_.clear();
        map_.clear();
        for (std::uint64_t n = in.u64(); n > 0; --n) {
            sim::Addr vpn = in.u64();
            Pte pte{in.u64()};
            lru_.push_back(Entry{vpn, pte});
            map_[vpn] = std::prev(lru_.end());
        }
        hits_.loadState(in);
        misses_.loadState(in);
        evictions_.loadState(in);
        shootdowns_.loadState(in);
    }

  private:
    struct Entry {
        sim::Addr vpn;
        Pte pte;
    };

    size_t capacity_;
    std::list<Entry> lru_;  // front = most recent
    std::unordered_map<sim::Addr, std::list<Entry>::iterator> map_;
    sim::Counter hits_, misses_, evictions_, shootdowns_;
};

}  // namespace maple::mem
