/**
 * @file
 * Main-memory timing model: fixed access latency plus a bandwidth model
 * implemented as channel-slot reservation (Table 2/3: 300-cycle latency,
 * ~64B per cycle aggregate bandwidth by default).
 */
#pragma once

#include <algorithm>
#include <vector>

#include "fault/fault.hpp"
#include "mem/physical_memory.hpp"
#include "mem/timed_mem.hpp"
#include "sim/stats.hpp"

namespace maple::mem {

struct DramParams {
    sim::Cycle latency = 300;          ///< closed-bank access latency
    sim::Cycle cycles_per_line = 1;    ///< serialization cost per 64B line
    unsigned channels = 1;             ///< independent channel slots
};

class Dram : public TimedMem {
  public:
    Dram(sim::EventQueue &eq, DramParams params = {})
        : eq_(eq), params_(params), channel_free_(params.channels, 0)
    {
        MAPLE_ASSERT(params.channels > 0);
    }

    sim::Task<void>
    access(sim::Addr paddr, std::uint32_t size, AccessKind kind) override
    {
        (void)kind;
        reads_.inc();
        // Line-interleaved channel mapping.
        unsigned lines = std::max<std::uint32_t>(1, (size + kLineSize - 1) / kLineSize);
        unsigned ch = static_cast<unsigned>((paddr >> kLineShift) % params_.channels);
        sim::Cycle now = eq_.now();
        sim::Cycle start = std::max(now, channel_free_[ch]);
        channel_free_[ch] = start + params_.cycles_per_line * lines;
        sim::Cycle done = channel_free_[ch] + params_.latency;
        // Injected latency spike: this access's data returns late (the
        // channel slot itself is not held, mimicking a row-buffer-miss /
        // refresh collision rather than lost bandwidth).
        if (fault::FaultInjector *f = fault::active(eq_)) {
            if (sim::Cycle d = f->inject(fault::FaultClass::DramSpike)) {
                done += d;
                f->chargeCycles(fault::FaultClass::DramSpike, d);
            }
        }
        queue_wait_.sample(static_cast<double>(start - now));
        co_await sim::delay(eq_, done - now);
    }

    std::uint64_t requests() const { return reads_.value(); }
    double meanQueueWait() const { return queue_wait_.mean(); }

  private:
    sim::EventQueue &eq_;
    DramParams params_;
    std::vector<sim::Cycle> channel_free_;
    sim::Counter reads_;
    sim::Average queue_wait_;
};

}  // namespace maple::mem
