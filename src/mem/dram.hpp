/**
 * @file
 * Main-memory timing model: fixed access latency plus a bandwidth model
 * implemented as channel-slot reservation (Table 2/3: 300-cycle latency,
 * ~64B per cycle aggregate bandwidth by default). The queue front-end can
 * host a non-fifo Arbiter (DramParams::arb), and per-requester-class
 * bandwidth/latency stats attribute every access to the agent that caused
 * it -- the line fill a core miss triggered bills the core, not the LLC.
 */
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "mem/fabric.hpp"
#include "mem/physical_memory.hpp"
#include "mem/port.hpp"
#include "mem/resil.hpp"
#include "sim/stats.hpp"

namespace maple::mem {

struct DramParams {
    sim::Cycle latency = 300;          ///< closed-bank access latency
    sim::Cycle cycles_per_line = 1;    ///< serialization cost per 64B line
    unsigned channels = 1;             ///< independent channel slots
    ArbPolicy arb = ArbPolicy::Fifo;   ///< queue front-end arbitration
};

class Dram : public Port {
  public:
    Dram(sim::EventQueue &eq, DramParams params = {})
        : eq_(eq), params_(params), channel_free_(params.channels, 0),
          stats_("dram")
    {
        MAPLE_ASSERT(params.channels > 0);
        for (unsigned i = 0; i < kNumRequesterClasses; ++i) {
            auto c = static_cast<RequesterClass>(i);
            std::string cls = requesterClassName(c);
            lat_[i] = &stats_.histogram("latency." + cls, 32.0, 64);
            bytes_[i] = &stats_.counter("bytes." + cls);
        }
        if (params_.arb != ArbPolicy::Fifo)
            arb_ = std::make_unique<Arbiter>(eq_, "dram", params_.arb);
    }

    sim::Task<void>
    request(MemRequest req) override
    {
        if (arb_)
            co_await arb_->admit(req);
        reads_.inc();
        // Line-interleaved channel mapping.
        unsigned lines = std::max<std::uint32_t>(1, (req.size + kLineSize - 1) / kLineSize);
        unsigned ch = static_cast<unsigned>((req.paddr >> kLineShift) % params_.channels);
        sim::Cycle now = eq_.now();
        sim::Cycle start = std::max(now, channel_free_[ch]);
        channel_free_[ch] = start + params_.cycles_per_line * lines;
        sim::Cycle done = channel_free_[ch] + params_.latency;
        // Injected latency spike: this access's data returns late (the
        // channel slot itself is not held, mimicking a row-buffer-miss /
        // refresh collision rather than lost bandwidth).
        if (fault::FaultInjector *f = fault::active(eq_)) {
            if (sim::Cycle d = f->inject(fault::FaultClass::DramSpike, req.cls)) {
                done += d;
                f->chargeCycles(fault::FaultClass::DramSpike, d);
                if (req.meta)
                    req.meta->fault_tags |=
                        fault::faultClassBit(fault::FaultClass::DramSpike);
            }
        }
        if (resil_ && req.kind != AccessKind::Write) {
            // ECC on the array read. A corrected error stretches this
            // access; an uncorrectable one marks the line poisoned in the
            // backing store (sticky until containment retires the page).
            EccOutcome o =
                resil_->check(fault::FaultClass::BitFlipDram, req.cls,
                              ResilStructure::Dram, lineBase(req.paddr),
                              req.tile);
            if (o == EccOutcome::Corrected)
                done += resil_->correctPenalty();
            else if (o == EccOutcome::Uncorrectable)
                resil_->markBackingPoisoned(lineBase(req.paddr));
            // Any covered line already recorded as poisoned (a poisoned
            // dirty writeback landed here earlier) poisons the response.
            if (req.meta && resil_->backingPoisonedLines() > 0) {
                for (sim::Addr l = lineBase(req.paddr),
                               end = lineBase(req.paddr + req.size - 1);
                     l <= end; l += kLineSize) {
                    if (resil_->backingPoisoned(l)) {
                        req.meta->poison = true;
                        req.meta->fault_tags |= fault::faultClassBit(
                            fault::FaultClass::BitFlipDram);
                        break;
                    }
                }
            }
        }
        queue_wait_.sample(static_cast<double>(start - now));
        co_await sim::delay(eq_, done - now);
        auto i = static_cast<std::size_t>(req.cls);
        lat_[i]->sample(static_cast<double>(eq_.now() - req.issue_cycle));
        bytes_[i]->inc(req.size);
    }

    std::uint64_t requests() const { return reads_.value(); }
    double meanQueueWait() const { return queue_wait_.mean(); }

    sim::StatGroup &stats() { return stats_; }
    const sim::StatGroup &stats() const { return stats_; }

    /** Bytes moved on behalf of one requester class. */
    std::uint64_t classBytes(RequesterClass c) const
    {
        return bytes_[static_cast<std::size_t>(c)]->value();
    }

    Arbiter *arbiter() { return arb_.get(); }

    /** Attach the soft-error resilience model (ECC + backing poison). */
    void setResil(ResilManager *r) { resil_ = r; }

    /** Snapshot support (quiesced: no access in flight holds a channel). */
    void
    saveState(ckpt::Sink &out) const
    {
        out.u64(channel_free_.size());
        for (sim::Cycle c : channel_free_)
            out.u64(c);
        reads_.saveState(out);
        queue_wait_.saveState(out);
        stats_.saveState(out);
        out.b(arb_ != nullptr);
        if (arb_)
            arb_->saveState(out);
    }

    void
    loadState(ckpt::Source &in)
    {
        std::uint64_t channels = in.u64();
        MAPLE_CHECK(channels == channel_free_.size(), ckpt::SnapshotError,
                    "DRAM channel-count mismatch in snapshot");
        for (sim::Cycle &c : channel_free_)
            c = in.u64();
        reads_.loadState(in);
        queue_wait_.loadState(in);
        stats_.loadState(in);
        bool had_arb = in.b();
        MAPLE_CHECK(had_arb == (arb_ != nullptr), ckpt::SnapshotError,
                    "DRAM arbitration-policy mismatch in snapshot");
        if (arb_)
            arb_->loadState(in);
    }

  private:
    sim::EventQueue &eq_;
    DramParams params_;
    std::vector<sim::Cycle> channel_free_;
    ResilManager *resil_ = nullptr;
    sim::Counter reads_;
    sim::Average queue_wait_;
    std::unique_ptr<Arbiter> arb_;
    sim::StatGroup stats_;
    // Borrowed pointers into stats_ (stable std::map storage).
    std::array<sim::Histogram *, kNumRequesterClasses> lat_{};
    std::array<sim::Counter *, kNumRequesterClasses> bytes_{};
};

}  // namespace maple::mem
