/**
 * @file
 * Table 3: core and memory parameters of the simulated system used for the
 * comparison against prior work (Figure 12), printed from the live
 * configuration object.
 */
#include <cstdio>

#include "soc/soc.hpp"

using namespace maple;

int
main()
{
    soc::SocConfig cfg = soc::SocConfig::simulated(2);

    std::printf("=== Table 3: simulated system (vs prior work) ===\n");
    std::printf("%-40s %u / 1\n", "Core count / threads per core", cfg.num_cores);
    std::printf("%-40s 1 / 1, in-order (blocking loads)\n",
                "Instruction window / ROB size");
    std::printf("%-40s %uKB / %u-way / %llu-cycle\n", "L1D (per core) / latency",
                cfg.l1.size_bytes / 1024, cfg.l1.assoc,
                (unsigned long long)cfg.l1.hit_latency);
    std::printf("%-40s %uKB / %u-way / ~%llu-cycle\n", "L2 (shared) / latency",
                cfg.llc.size_bytes / 1024, cfg.llc.assoc,
                (unsigned long long)(cfg.llc.hit_latency + 4));
    std::printf("%-40s %lluGB / %u channels x 64B/cy / %llu-cycle\n",
                "DRAM size / bandwidth / latency",
                (unsigned long long)(cfg.dram_bytes >> 30), cfg.dram.channels,
                (unsigned long long)cfg.dram.latency);
    return 0;
}
