/**
 * @file
 * Ablation studies of MAPLE's design choices (the list DESIGN.md calls out):
 *
 *  A1. produce-buffer depth          -- how much Access-side decoupling the
 *                                       buffered produce path provides;
 *  A2. pointer fetch path            -- non-coherent direct-to-DRAM (the
 *                                       default) vs coherent through the LLC;
 *  A3. MAPLE TLB size                -- translation locality of the IMAs;
 *  A4. core store-buffer depth       -- the producer-side channel that turns
 *                                       queue-full backpressure into stalls.
 *
 * Each ablation reports MAPLE-decoupling runtime on SPMV and BFS (the two
 * decoupling-friendly kernels with different locality profiles).
 */
#include <cstdio>

#include "harness/figures.hpp"

using namespace maple;

namespace {

struct Row {
    const char *label;
    std::function<void(app::RunConfig &)> tweak;
};

void
runAblation(const char *title, const std::vector<Row> &rows)
{
    std::printf("\n--- %s ---\n", title);
    std::printf("%-34s %14s %14s\n", "configuration", "spmv (cycles)",
                "bfs (cycles)");
    auto spmv = app::makeSpmv();
    auto bfs = app::makeBfs();
    for (const Row &row : rows) {
        app::RunConfig cfg;
        cfg.tech = app::Technique::MapleDecouple;
        cfg.threads = 2;
        cfg.soc = soc::SocConfig::fpga();
        row.tweak(cfg);
        app::RunResult rs = spmv->run(cfg);
        app::RunResult rb = bfs->run(cfg);
        MAPLE_ASSERT(rs.valid && rb.valid, "ablation produced wrong results");
        std::printf("%-34s %14llu %14llu\n", row.label,
                    (unsigned long long)rs.cycles, (unsigned long long)rb.cycles);
    }
}

}  // namespace

int
main()
{
    std::printf("=== MAPLE design-choice ablations (maple-decouple, 2 threads) ===\n");

    runAblation("A1: produce-buffer depth",
                {{"produce_buffer = 1",
                  [](app::RunConfig &c) { c.soc.maple_proto.produce_buffer = 1; }},
                 {"produce_buffer = 4",
                  [](app::RunConfig &c) { c.soc.maple_proto.produce_buffer = 4; }},
                 {"produce_buffer = 16 (default)", [](app::RunConfig &) {}},
                 {"produce_buffer = 64",
                  [](app::RunConfig &c) { c.soc.maple_proto.produce_buffer = 64; }}});

    runAblation("A2: pointer fetch path",
                {{"direct to DRAM (default)", [](app::RunConfig &) {}},
                 {"coherent via LLC",
                  [](app::RunConfig &c) { c.soc.maple_proto.fetch_via_llc = true; }}});

    runAblation("A3: MAPLE TLB entries",
                {{"4 entries",
                  [](app::RunConfig &c) { c.soc.maple_proto.tlb_entries = 4; }},
                 {"16 entries (default)", [](app::RunConfig &) {}},
                 {"64 entries",
                  [](app::RunConfig &c) { c.soc.maple_proto.tlb_entries = 64; }}});

    runAblation("A4: core store-buffer depth",
                {{"1 entry (blocking stores)",
                  [](app::RunConfig &c) { c.soc.core_proto.store_buffer = 1; }},
                 {"4 entries (default)", [](app::RunConfig &) {}},
                 {"16 entries",
                  [](app::RunConfig &c) { c.soc.core_proto.store_buffer = 16; }}});

    std::printf("\n(the deadlock ablation -- a single shared pipeline -- is a "
                "liveness property\n and lives in the test suite: "
                "Maple.SharedPipelineAblationDeadlocks)\n");
    return 0;
}
