/**
 * @file
 * Host-performance benchmark of the simulation kernel itself: how many
 * events per host-second the engine sustains. Three tiers of realism:
 *
 *   1. pure_event      — self-rescheduling callback chains, nothing but the
 *                        scheduler in the loop (kernel ceiling).
 *   2. coro_delay      — coroutine delay() ping loops: the zero-allocation
 *                        coroutine-resume event path every model rides.
 *   3. noc_saturation  — an 8x8 mesh full of competing transits: link
 *                        reservation, stats and coroutines together.
 *   4. maple_spmv      — a full bench_fig08-style MAPLE-decoupled SPMV run
 *                        (cores, caches, TLBs, MAPLE pipeline, NoC, DRAM).
 *   5. coh_spmv        — the same run with MSI coherence plus the flat-memory
 *                        reference checker enabled: directory lookups and
 *                        protocol messages now ride every miss, so this tier
 *                        prices the honesty tax of coherent experiments.
 *
 * Two sharded tiers scale with host threads (--threads=N or
 * --threads-sweep=1,2,4 emit one sample per count, distinguished by the
 * "threads" JSON field):
 *
 *   5. grid_spmv       — a 4-chip SocGrid each running a doall SPMV
 *                        scenario: embarrassingly-parallel domains, the
 *                        campaign-throughput shape.
 *   6. sharded_noc     — 4 mesh domains exchanging cross-domain requests at
 *                        a 32-cycle link latency: quantum-bound BSP sync and
 *                        mailbox merging in the loop.
 *
 * Both sharded tiers assert that their simulated results are identical
 * across every swept thread count, so the determinism contract is exercised
 * on every perf run, not only in the unit tests.
 *
 * Prints a table and writes BENCH_host_perf.json (override with
 * --out=<path>); --quick shrinks iteration counts to CI-smoke size. CI runs
 * `bench_host_perf --quick` on every push and fails on gross regression
 * against the checked-in baseline.
 */
#include <cstdio>
#include <functional>
#include <vector>

#include "harness/host_perf.hpp"
#include "harness/scenario.hpp"
#include "mem/shard_port.hpp"
#include "noc/mesh.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded.hpp"
#include "soc/grid.hpp"
#include "workloads/workload.hpp"

using namespace maple;

namespace {

/** Self-rescheduling callback storm: the scheduler and nothing else. */
harness::PerfSample
pureEvent(std::uint64_t total_events)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    constexpr int kChains = 64;
    std::vector<std::function<void()>> chains(kChains);
    for (int i = 0; i < kChains; ++i) {
        chains[i] = [&eq, &fired, &chains, total_events, i] {
            if (++fired < total_events)
                eq.scheduleIn(1 + (fired % 7), chains[i]);
        };
    }
    harness::WallTimer t;
    for (int i = 0; i < kChains; ++i)
        eq.scheduleIn(1 + i % 7, chains[i]);
    eq.run();
    return {"pure_event", eq.executed(), eq.now(), t.seconds()};
}

/** Coroutine delay() ping loops: the pooled coroutine-resume path. */
harness::PerfSample
coroDelay(int rounds)
{
    constexpr int kTasks = 64;
    sim::EventQueue eq;
    auto ping = [&eq, rounds]() -> sim::Task<void> {
        for (int r = 0; r < rounds; ++r)
            co_await sim::delay(eq, 1 + (r % 5));
    };
    std::vector<sim::Join> joins;
    joins.reserve(kTasks);
    harness::WallTimer t;
    for (int i = 0; i < kTasks; ++i)
        joins.push_back(sim::spawn(ping()));
    eq.run();
    harness::PerfSample s{"coro_delay", eq.executed(), eq.now(), t.seconds()};
    for (auto &j : joins)
        j.get();
    return s;
}

/** All-to-all traffic on an 8x8 mesh: contention, stats, coroutines. */
harness::PerfSample
nocSaturation(int transits_per_flow)
{
    sim::EventQueue eq;
    noc::MeshParams mp;
    mp.width = 8;
    mp.height = 8;
    noc::Mesh mesh(eq, mp);
    constexpr int kFlows = 128;
    auto flow = [&](unsigned f) -> sim::Task<void> {
        const unsigned tiles = mesh.numTiles();
        for (int i = 0; i < transits_per_flow; ++i) {
            sim::TileId src = (f * 7 + i) % tiles;
            sim::TileId dst = (f * 13 + i * 5 + 1) % tiles;
            if (src == dst)
                dst = (dst + 1) % tiles;
            co_await mesh.transit(src, dst, noc::flitsFor(16));
        }
    };
    std::vector<sim::Join> joins;
    joins.reserve(kFlows);
    harness::WallTimer t;
    for (unsigned f = 0; f < kFlows; ++f)
        joins.push_back(sim::spawn(flow(f)));
    eq.run();
    harness::PerfSample s{"noc_saturation", eq.executed(), eq.now(),
                          t.seconds()};
    for (auto &j : joins)
        j.get();
    return s;
}

/** Full-system anchor: MAPLE-decoupled SPMV on the FPGA SoC config. */
harness::PerfSample
mapleSpmv(bool quick)
{
    auto w = quick ? app::makeSpmv(1024, 16384, 8) : app::makeSpmv();
    app::RunConfig cfg;
    cfg.tech = app::Technique::MapleDecouple;
    cfg.threads = 2;
    cfg.soc = soc::SocConfig::fpga();
    harness::WallTimer t;
    app::RunResult r = w->run(cfg);
    double secs = t.seconds();
    MAPLE_ASSERT(r.valid, "maple_spmv checksum mismatch");
    return {"maple_spmv", r.sim_events, r.cycles, secs};
}

/** The same full-system SPMV with MSI coherence and the reference checker
 *  live: the cost of running experiments honestly, measured against the
 *  maple_spmv tier above. */
harness::PerfSample
cohSpmv(bool quick)
{
    auto w = quick ? app::makeSpmv(1024, 16384, 8) : app::makeSpmv();
    app::RunConfig cfg;
    cfg.tech = app::Technique::MapleDecouple;
    cfg.threads = 2;
    cfg.soc = soc::SocConfig::fpga();
    cfg.soc.coherence.mode = mem::CoherenceMode::Msi;
    cfg.soc.coherence.checker = true;
    harness::WallTimer t;
    app::RunResult r = w->run(cfg);
    double secs = t.seconds();
    MAPLE_ASSERT(r.valid, "coh_spmv checksum mismatch");
    return {"coh_spmv", r.sim_events, r.cycles, secs};
}

/** Simulated-outcome fingerprint of a sharded run: must not vary with the
 *  host thread count. */
struct ShardFingerprint {
    std::vector<std::uint64_t> words;

    bool operator==(const ShardFingerprint &) const = default;
};

/** 4 independent chips each running a doall SPMV scenario (campaign shape). */
harness::PerfSample
gridSpmv(unsigned threads, bool quick, ShardFingerprint &fp)
{
    constexpr unsigned kChips = 4;
    harness::ScenarioSpec spec;
    spec.rows = quick ? 256 : 1024;
    soc::SocConfig proto = soc::SocConfig::fpga();
    proto.name = "grid";
    soc::SocGridConfig gc = soc::SocGridConfig::uniform(proto, kChips);
    gc.host_threads = threads;
    soc::SocGrid grid(gc);
    for (unsigned i = 0; i < grid.size(); ++i) {
        harness::ScenarioSpec s = spec;
        s.seed = spec.seed + i;  // distinct dataset per chip
        harness::warmScenario(grid.soc(i), s);
    }

    const std::uint64_t base_events = grid.engine().executed();
    std::vector<sim::Join> joins;
    harness::WallTimer t;
    std::vector<sim::Cycle> starts;
    for (unsigned i = 0; i < grid.size(); ++i) {
        harness::ScenarioSpec s = spec;
        s.seed = spec.seed + i;
        starts.push_back(grid.soc(i).eq().now());
        for (sim::Join &j : harness::spawnScenarioDoall(grid.soc(i), s))
            joins.push_back(std::move(j));
    }
    sim::Cycle cycles = grid.run(std::move(joins));
    harness::PerfSample sample{"grid_spmv",
                               grid.engine().executed() - base_events, cycles,
                               t.seconds(), threads};
    fp.words.clear();
    for (unsigned i = 0; i < grid.size(); ++i) {
        harness::ScenarioSpec s = spec;
        s.seed = spec.seed + i;
        harness::ScenarioResult r =
            harness::collectScenarioResult(grid.soc(i), s, starts[i]);
        MAPLE_ASSERT(r.result.valid, "grid_spmv checksum mismatch");
        fp.words.push_back(r.result.checksum);
        fp.words.push_back(r.end_cycle);
        fp.words.push_back(grid.soc(i).eq().executed());
    }
    return sample;
}

/** 4 mesh domains coupled by 32-cycle cross-domain links: BSP sync and
 *  mailbox merge on the hot path. */
harness::PerfSample
shardedNoc(unsigned threads, int transits_per_flow, ShardFingerprint &fp)
{
    constexpr unsigned kDomains = 4;
    constexpr sim::Cycle kLink = 32;
    sim::ShardedEngine engine;
    std::vector<std::unique_ptr<sim::EventQueue>> eqs;
    std::vector<std::unique_ptr<noc::Mesh>> meshes;
    std::vector<std::unique_ptr<mem::FixedLatencyMem>> mems;
    for (unsigned d = 0; d < kDomains; ++d) {
        eqs.push_back(std::make_unique<sim::EventQueue>());
        engine.addDomain(*eqs.back(), "noc." + std::to_string(d));
        noc::MeshParams mp;
        mp.width = 4;
        mp.height = 4;
        meshes.push_back(std::make_unique<noc::Mesh>(*eqs.back(), mp));
        mems.push_back(std::make_unique<mem::FixedLatencyMem>(*eqs.back(), 8));
    }
    std::vector<std::unique_ptr<mem::CrossDomainPort>> links;
    for (unsigned d = 0; d < kDomains; ++d) {
        unsigned n = (d + 1) % kDomains;
        links.push_back(std::make_unique<mem::CrossDomainPort>(
            engine, d, *eqs[d], n, *eqs[n], *mems[n], kLink));
    }

    auto meshFlow = [&](unsigned d, unsigned f) -> sim::Task<void> {
        noc::Mesh &mesh = *meshes[d];
        const unsigned tiles = mesh.numTiles();
        for (int i = 0; i < transits_per_flow; ++i) {
            sim::TileId src = (f * 7 + i) % tiles;
            sim::TileId dst = (f * 13 + i * 5 + 1) % tiles;
            if (src == dst)
                dst = (dst + 1) % tiles;
            co_await mesh.transit(src, dst, noc::flitsFor(16));
        }
    };
    auto crossFlow = [&](unsigned d, unsigned f) -> sim::Task<void> {
        sim::EventQueue &eq = *eqs[d];
        for (int i = 0; i < transits_per_flow / 4; ++i) {
            mem::MemRequest req = mem::MemRequest::make(
                eq, mem::RequesterClass::Core, f % 16, 64 * i, 16,
                mem::AccessKind::Read);
            co_await links[d]->request(req);
        }
    };
    std::vector<sim::Join> joins;
    harness::WallTimer t;
    for (unsigned d = 0; d < kDomains; ++d) {
        for (unsigned f = 0; f < 32; ++f)
            joins.push_back(sim::spawn(meshFlow(d, f)));
        for (unsigned f = 0; f < 8; ++f)
            joins.push_back(sim::spawn(crossFlow(d, f)));
    }
    sim::ShardedEngine::RunOptions ro;
    ro.threads = threads;
    bool drained = engine.run(ro);
    harness::PerfSample sample{"sharded_noc", engine.executed(), eqs[0]->now(),
                               t.seconds(), threads};
    MAPLE_ASSERT(drained, "sharded_noc did not drain");
    for (sim::Join &j : joins)
        j.get();
    fp.words.clear();
    for (unsigned d = 0; d < kDomains; ++d) {
        fp.words.push_back(eqs[d]->now());
        fp.words.push_back(eqs[d]->executed());
        fp.words.push_back(meshes[d]->flitsSent());
    }
    fp.words.push_back(engine.messagesMerged());
    return sample;
}

}  // namespace

int
main(int argc, char **argv)
{
    harness::HostPerfOptions opts = harness::applyHostPerfFlags(argc, argv);
    const std::uint64_t pure_events = opts.quick ? 2'000'000 : 20'000'000;
    const int coro_rounds = opts.quick ? 20'000 : 200'000;
    const int noc_transits = opts.quick ? 2'000 : 20'000;

    harness::HostPerfReport report;
    report.add(pureEvent(pure_events));
    report.add(coroDelay(coro_rounds));
    report.add(nocSaturation(noc_transits));
    report.add(mapleSpmv(opts.quick));
    report.add(cohSpmv(opts.quick));

    // Sharded tiers: one sample per swept thread count, with a cross-count
    // determinism assertion (the simulated outcome must not move).
    ShardFingerprint grid_ref, noc_ref;
    for (size_t i = 0; i < opts.threads_sweep.size(); ++i) {
        unsigned threads = opts.threads_sweep[i];
        ShardFingerprint grid_fp, noc_fp;
        report.add(gridSpmv(threads, opts.quick, grid_fp));
        report.add(shardedNoc(threads, noc_transits / 4, noc_fp));
        if (i == 0) {
            grid_ref = grid_fp;
            noc_ref = noc_fp;
        } else {
            MAPLE_ASSERT(grid_fp == grid_ref,
                         "grid_spmv result varies with host threads");
            MAPLE_ASSERT(noc_fp == noc_ref,
                         "sharded_noc result varies with host threads");
        }
    }
    report.print();
    report.writeJson(opts.out_path, "bench_host_perf", opts.quick);
    return 0;
}
