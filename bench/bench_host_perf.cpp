/**
 * @file
 * Host-performance benchmark of the simulation kernel itself: how many
 * events per host-second the engine sustains. Three tiers of realism:
 *
 *   1. pure_event      — self-rescheduling callback chains, nothing but the
 *                        scheduler in the loop (kernel ceiling).
 *   2. coro_delay      — coroutine delay() ping loops: the zero-allocation
 *                        coroutine-resume event path every model rides.
 *   3. noc_saturation  — an 8x8 mesh full of competing transits: link
 *                        reservation, stats and coroutines together.
 *   4. maple_spmv      — a full bench_fig08-style MAPLE-decoupled SPMV run
 *                        (cores, caches, TLBs, MAPLE pipeline, NoC, DRAM).
 *
 * Prints a table and writes BENCH_host_perf.json (override with
 * --out=<path>); --quick shrinks iteration counts to CI-smoke size. CI runs
 * `bench_host_perf --quick` on every push and fails on gross regression
 * against the checked-in baseline.
 */
#include <cstdio>
#include <functional>
#include <vector>

#include "harness/host_perf.hpp"
#include "noc/mesh.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "workloads/workload.hpp"

using namespace maple;

namespace {

/** Self-rescheduling callback storm: the scheduler and nothing else. */
harness::PerfSample
pureEvent(std::uint64_t total_events)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    constexpr int kChains = 64;
    std::vector<std::function<void()>> chains(kChains);
    for (int i = 0; i < kChains; ++i) {
        chains[i] = [&eq, &fired, &chains, total_events, i] {
            if (++fired < total_events)
                eq.scheduleIn(1 + (fired % 7), chains[i]);
        };
    }
    harness::WallTimer t;
    for (int i = 0; i < kChains; ++i)
        eq.scheduleIn(1 + i % 7, chains[i]);
    eq.run();
    return {"pure_event", eq.executed(), eq.now(), t.seconds()};
}

/** Coroutine delay() ping loops: the pooled coroutine-resume path. */
harness::PerfSample
coroDelay(int rounds)
{
    constexpr int kTasks = 64;
    sim::EventQueue eq;
    auto ping = [&eq, rounds]() -> sim::Task<void> {
        for (int r = 0; r < rounds; ++r)
            co_await sim::delay(eq, 1 + (r % 5));
    };
    std::vector<sim::Join> joins;
    joins.reserve(kTasks);
    harness::WallTimer t;
    for (int i = 0; i < kTasks; ++i)
        joins.push_back(sim::spawn(ping()));
    eq.run();
    harness::PerfSample s{"coro_delay", eq.executed(), eq.now(), t.seconds()};
    for (auto &j : joins)
        j.get();
    return s;
}

/** All-to-all traffic on an 8x8 mesh: contention, stats, coroutines. */
harness::PerfSample
nocSaturation(int transits_per_flow)
{
    sim::EventQueue eq;
    noc::MeshParams mp;
    mp.width = 8;
    mp.height = 8;
    noc::Mesh mesh(eq, mp);
    constexpr int kFlows = 128;
    auto flow = [&](unsigned f) -> sim::Task<void> {
        const unsigned tiles = mesh.numTiles();
        for (int i = 0; i < transits_per_flow; ++i) {
            sim::TileId src = (f * 7 + i) % tiles;
            sim::TileId dst = (f * 13 + i * 5 + 1) % tiles;
            if (src == dst)
                dst = (dst + 1) % tiles;
            co_await mesh.transit(src, dst, noc::flitsFor(16));
        }
    };
    std::vector<sim::Join> joins;
    joins.reserve(kFlows);
    harness::WallTimer t;
    for (unsigned f = 0; f < kFlows; ++f)
        joins.push_back(sim::spawn(flow(f)));
    eq.run();
    harness::PerfSample s{"noc_saturation", eq.executed(), eq.now(),
                          t.seconds()};
    for (auto &j : joins)
        j.get();
    return s;
}

/** Full-system anchor: MAPLE-decoupled SPMV on the FPGA SoC config. */
harness::PerfSample
mapleSpmv(bool quick)
{
    auto w = quick ? app::makeSpmv(1024, 16384, 8) : app::makeSpmv();
    app::RunConfig cfg;
    cfg.tech = app::Technique::MapleDecouple;
    cfg.threads = 2;
    cfg.soc = soc::SocConfig::fpga();
    harness::WallTimer t;
    app::RunResult r = w->run(cfg);
    double secs = t.seconds();
    MAPLE_ASSERT(r.valid, "maple_spmv checksum mismatch");
    return {"maple_spmv", r.sim_events, r.cycles, secs};
}

}  // namespace

int
main(int argc, char **argv)
{
    harness::HostPerfOptions opts = harness::applyHostPerfFlags(argc, argv);
    const std::uint64_t pure_events = opts.quick ? 2'000'000 : 20'000'000;
    const int coro_rounds = opts.quick ? 20'000 : 200'000;
    const int noc_transits = opts.quick ? 2'000 : 20'000;

    harness::HostPerfReport report;
    report.add(pureEvent(pure_events));
    report.add(coroDelay(coro_rounds));
    report.add(nocSaturation(noc_transits));
    report.add(mapleSpmv(opts.quick));
    report.print();
    report.writeJson(opts.out_path, "bench_host_perf", opts.quick);
    return 0;
}
