/**
 * @file
 * Figure 11: average clock cycles per load instruction under software
 * prefetching vs MAPLE's LIMA operation (single thread), measured by the
 * cores' hardware performance counters.
 *
 * Paper headline: LIMA nearly halves the average load latency (1.85x
 * geomean reduction) because IMAs are consumed from the nearby MAPLE queue
 * instead of missing all the way to DRAM or thrashing the L1.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main(int argc, char **argv)
{
    std::string grid_json = harness::applyGridJsonFlag(argc, argv);
    auto workloads = app::allWorkloads();
    app::RunConfig base;
    base.threads = 1;
    base.soc = soc::SocConfig::fpga();

    std::vector<app::Technique> techs = {app::Technique::NoPrefetch,
                                         app::Technique::SwPrefetch,
                                         app::Technique::LimaPrefetch};
    harness::Grid grid = harness::runGrid(workloads, techs, base);
    harness::writeGridJson(grid_json, "fig11", grid);
    auto names = harness::workloadNames(workloads);

    printMetricTable(
        "Figure 11: average load latency (cycles)", grid, names, techs,
        [](const app::RunResult &r) { return r.mean_load_latency; }, "cy");

    std::vector<double> reduction;
    for (auto &n : names) {
        reduction.push_back(
            grid.at(n, app::Technique::SwPrefetch).mean_load_latency /
            grid.at(n, app::Technique::LimaPrefetch).mean_load_latency);
    }
    std::printf("\nLIMA load-latency reduction vs software prefetching: "
                "%.2fx (paper: 1.85x)\n",
                sim::geomean(reduction));
    return 0;
}
