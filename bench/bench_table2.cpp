/**
 * @file
 * Table 2: the SoC configuration used for the full-system evaluation
 * (OpenPiton+Ariane+MAPLE on a VC707 FPGA in the paper; here the simulated
 * equivalent), printed from the live configuration object so the table can
 * never drift from what the benches actually run.
 */
#include <cstdio>

#include "soc/soc.hpp"

using namespace maple;

int
main()
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    soc::Soc soc(cfg);  // resolves derived parameters (mesh geometry)

    std::printf("=== Table 2: SoC configuration (full-system evaluation) ===\n");
    std::printf("%-40s %s\n", "SoC configuration", cfg.name.c_str());
    std::printf("%-40s %u / %uB\n", "MAPLE instances / scratchpad size",
                cfg.num_maples, cfg.maple_proto.scratchpad_bytes);
    std::printf("%-40s %u / 1\n", "Core count / threads per core", cfg.num_cores);
    std::printf("%-40s %s\n", "Core type",
                "in-order single-issue (Ariane-like), blocking loads");
    std::printf("%-40s %uKB %u-way / %llu-cycle\n", "L1D per core / latency",
                cfg.l1.size_bytes / 1024, cfg.l1.assoc,
                (unsigned long long)cfg.l1.hit_latency);
    std::printf("%-40s %uKB %u-way / ~%llu-cycle\n", "L2 (shared) / latency",
                cfg.llc.size_bytes / 1024, cfg.llc.assoc,
                (unsigned long long)(cfg.llc.hit_latency + 4));
    std::printf("%-40s %ux%u mesh, %llu cycle/hop\n", "NoC",
                soc.config().mesh.width, soc.config().mesh.height,
                (unsigned long long)cfg.mesh.hop_latency);
    std::printf("%-40s %lluMB / %llu-cycle\n", "DRAM size / latency",
                (unsigned long long)(cfg.dram_bytes >> 20),
                (unsigned long long)cfg.dram.latency);
    std::printf("%-40s %zu-entry fully associative\n", "TLBs (cores and MAPLE)",
                cfg.maple_proto.tlb_entries);
    std::printf("%-40s %u / %u entries x 4B\n", "MAPLE queues (default)",
                cfg.maple_proto.max_queues,
                cfg.maple_proto.scratchpad_bytes / (cfg.maple_proto.max_queues * 4));
    std::printf("\n(paper adds the FPGA board: Xilinx VC707, XC7VX485T, 60MHz,\n"
                " 216831 CLB LUTs = 69.9%% utilization -- not applicable to the\n"
                " simulator reproduction)\n");
    return 0;
}
