/**
 * @file
 * Extension study: offloaded read-modify-write atomics (Section 3 lists RMW
 * as a natural extension of MAPLE's programming model). The kernel is a
 * histogram/degree-count -- the indirect *update* pattern hist[key[i]]++
 * that defeats decoupling (Figure 12's SPMM story) when the core must
 * perform the RMW itself.
 *
 * Three variants over the same data:
 *   1. core amoAdd       -- each atomic is a blocking LLC round trip;
 *   2. core load+store   -- non-atomic RMW through the L1 (single thread
 *                           only; shown for reference);
 *   3. MAPLE ProduceAmoAdd -- the core streams keys, MAPLE performs the
 *                           atomics with full MLP.
 */
#include <cstdio>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"
#include "workloads/workload.hpp"

using namespace maple;

namespace {

constexpr std::uint32_t kKeys = 1u << 16;   // 256KB histogram: LLC-hostile
constexpr std::uint32_t kSamples = 32768;

sim::Task<void>
coreAmoWorker(cpu::Core &core, sim::Addr keys, sim::Addr hist, app::Chunk ch)
{
    for (std::uint64_t i = ch.begin; i < ch.end; ++i) {
        std::uint64_t k = co_await core.load(keys + 4 * i, 4);
        co_await core.compute(1);
        (void)co_await core.amoAdd(hist + 4 * k, 1, 4);
    }
}

sim::Task<void>
loadStoreWorker(cpu::Core &core, sim::Addr keys, sim::Addr hist, app::Chunk ch)
{
    for (std::uint64_t i = ch.begin; i < ch.end; ++i) {
        std::uint64_t k = co_await core.load(keys + 4 * i, 4);
        std::uint64_t v = co_await core.load(hist + 4 * k, 4);
        co_await core.compute(1);
        co_await core.store(hist + 4 * k, v + 1, 4);
    }
}

sim::Task<void>
mapleAmoWorker(cpu::Core &core, core::MapleApi &api, unsigned q, sim::Addr keys,
               app::Chunk ch, sim::Addr hist)
{
    co_await api.setAmoAddend(core, q, 1);
    std::uint64_t outstanding = 0;
    for (std::uint64_t i = ch.begin; i < ch.end; ++i) {
        std::uint64_t k = co_await core.load(keys + 4 * i, 4);
        co_await core.compute(1);
        co_await api.produceAmoAdd(core, q, hist + 4 * k);
        if (++outstanding == 24) {  // reclaim slots in batches
            for (int d = 0; d < 24; ++d)
                (void)co_await api.consume(core, q);
            outstanding = 0;
        }
    }
    for (std::uint64_t d = 0; d < outstanding; ++d)
        (void)co_await api.consume(core, q);
}

}  // namespace

int
main()
{
    std::printf("=== RMW extension: histogram of %u samples over %u buckets ===\n\n",
                kSamples, kKeys);
    app::SparseMatrix dummy;  // reuse the RNG-backed generators for keys
    std::vector<float> rnd = app::makeDenseVector(kSamples, 123);

    auto build = [&](soc::Soc &soc, os::Process &proc, sim::Addr &keys,
                     sim::Addr &hist) {
        keys = proc.alloc(kSamples * 4, "keys");
        hist = proc.alloc(kKeys * 4, "hist");
        for (std::uint32_t i = 0; i < kSamples; ++i) {
            auto k = static_cast<std::uint32_t>(rnd[i] * kKeys);
            proc.writeScalar<std::uint32_t>(keys + 4 * i, k % kKeys);
        }
        (void)soc;
    };

    // 1. core atomics, 2 threads
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("amo1");
        sim::Addr keys, hist;
        build(soc, proc, keys, hist);
        sim::Cycle cy = soc.run(
            {sim::spawn(coreAmoWorker(soc.core(0), keys, hist,
                                      app::chunkOf(kSamples, 0, 2))),
             sim::spawn(coreAmoWorker(soc.core(1), keys, hist,
                                      app::chunkOf(kSamples, 1, 2)))});
        std::printf("%-38s %12llu cycles\n", "core amoAdd (2 threads)",
                    (unsigned long long)cy);
    }

    // 2. plain load+store RMW, 1 thread (reference)
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("amo2");
        sim::Addr keys, hist;
        build(soc, proc, keys, hist);
        sim::Cycle cy = soc.run({sim::spawn(
            loadStoreWorker(soc.core(0), keys, hist, app::Chunk{0, kSamples}))});
        std::printf("%-38s %12llu cycles\n", "load+store RMW (1 thread)",
                    (unsigned long long)cy);
    }

    // 3. MAPLE-offloaded atomics, 2 threads, one queue each
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("amo3");
        sim::Addr keys, hist;
        build(soc, proc, keys, hist);
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        auto setup = [&](cpu::Core &c) -> sim::Task<void> {
            co_await api.init(c, 2, 32, 4);
            for (unsigned q = 0; q < 2; ++q) {
                bool ok = co_await api.open(c, q);
                MAPLE_ASSERT(ok, "open failed");
            }
        };
        soc.run({sim::spawn(setup(soc.core(0)))});
        sim::Cycle cy = soc.run(
            {sim::spawn(mapleAmoWorker(soc.core(0), api, 0, keys,
                                       app::chunkOf(kSamples, 0, 2), hist)),
             sim::spawn(mapleAmoWorker(soc.core(1), api, 1, keys,
                                       app::chunkOf(kSamples, 1, 2), hist))});
        std::printf("%-38s %12llu cycles\n", "MAPLE ProduceAmoAdd (2 threads)",
                    (unsigned long long)cy);

        // Validate against a host histogram.
        std::vector<std::uint32_t> golden(kKeys, 0);
        for (std::uint32_t i = 0; i < kSamples; ++i)
            ++golden[proc.readScalar<std::uint32_t>(keys + 4 * i)];
        bool ok = true;
        for (std::uint32_t k = 0; k < kKeys; ++k)
            ok &= proc.readScalar<std::uint32_t>(hist + 4 * k) == golden[k];
        std::printf("\nresult check: %s\n", ok ? "PASS" : "FAIL");
    }
    std::printf("\n(offloading the RMW recovers the MLP that Figure 12's SPMM "
                "fallback gives up)\n");
    return 0;
}
