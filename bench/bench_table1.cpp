/**
 * @file
 * Table 1: classification of hardware-assisted prior work on IMA latency
 * mitigation, by the four features that make a technique practical to adopt
 * in an SoC. Reproduced as the qualitative taxonomy it is; MAPLE is the only
 * row with every column checked.
 */
#include <cstdio>

int
main()
{
    struct Row {
        const char *technique;
        bool unmodified_cores, unmodified_isa, simple_cores, hw_sw_codesign;
    };
    const Row rows[] = {
        {"HW DAE [21,36,49]", false, false, true, false},
        {"DeSC / MTDCAE [22,55]", false, false, true, true},
        {"SW Pre-execution [35]", true, true, false, true},
        {"Triggered inst. [43]", false, false, true, true},
        {"Slipstream [52,54]", false, true, true, false},
        {"HW Prefetching [9]", false, true, true, false},
        {"Graph Pref, IMP [1,62]", false, true, true, false},
        {"Programmable Pref. [3]", false, false, true, true},
        {"DSWP [45]", false, false, false, true},
        {"Outrider [15]", false, false, false, true},
        {"Clairvoyance [58]", true, true, false, false},
        {"SWOOP [59]", false, true, true, true},
        {"MAD [24]", false, true, true, true},
        {"Pipette [41]", false, false, false, true},
        {"Prodigy [56]", false, true, true, true},
        {"MAPLE (this work)", true, true, true, true},
    };

    std::printf("=== Table 1: prior work on IMA latency mitigation ===\n");
    std::printf("%-26s %10s %10s %8s %10s\n", "Technique", "Unmod.cores",
                "Unmod.ISA", "Simple", "HW-SW");
    for (const Row &r : rows) {
        auto c = [](bool b) { return b ? "yes" : "-"; };
        std::printf("%-26s %10s %10s %8s %10s\n", r.technique,
                    c(r.unmodified_cores), c(r.unmodified_isa),
                    c(r.simple_cores), c(r.hw_sw_codesign));
    }
    return 0;
}
