/**
 * @file
 * Honest large-grid scaling with the MSI protocol on: fig14-style
 * multi-MAPLE decoupled SPMV at 64, 128 and 256 tiles, with every cache
 * kept coherent by the sparse directories and a shared progress array
 * ping-ponging between execute cores to generate real invalidation
 * traffic. The reference checker is enabled throughout, so the numbers
 * are only printed if every one of the millions of transitions was
 * protocol-legal.
 *
 *   bench_coherence_grid [tiles ...]     subset of {64, 128, 256}
 *
 * Knobs: MAPLE_LLC_SLICES / MAPLE_COH_* overlay the per-scale defaults.
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"
#include "workloads/workload.hpp"

using namespace maple;

namespace {

constexpr std::uint32_t kCols = 4096;
constexpr std::uint32_t kNnz = 8;
constexpr std::uint32_t kRowsPerPair = 16;

struct Sim {
    app::SimCsr m;
    app::SimArray<float> x, y;
    app::SimArray<std::uint32_t> progress;  ///< actively-shared lines
};

sim::Task<void>
access(cpu::Core &core, Sim &s, core::MapleApi &api, unsigned q,
       app::Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            co_await core.compute(1);
            co_await api.producePtr(core, q, s.x.addr(c));
        }
        jb = je;
    }
}

sim::Task<void>
execute(cpu::Core &core, Sim &s, core::MapleApi &api, unsigned q,
        app::Chunk rows, unsigned slot)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = app::f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = app::f32FromBits(co_await api.consume(core, q));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), app::bitsFromF32(acc), 4);
        // Shared progress line: many executors bump the same few counters,
        // which under MSI is a stream of upgrade misses + invalidations.
        auto p = static_cast<std::uint32_t>(
            co_await core.loadShared(s.progress.addr(slot), 4));
        co_await core.storeShared(s.progress.addr(slot), p + 1, 4);
        jb = je;
    }
}

void
runScale(unsigned tiles)
{
    // tiles = cores + maples + slices with 2 queue pairs per MAPLE.
    const unsigned cores = tiles * 3 / 4;          // 48 / 96 / 192
    const unsigned maples = tiles / 4 - tiles / 16; // 12 / 24 / 48
    const unsigned slices = tiles / 16;             // 4 / 8 / 16
    const unsigned pairs = cores / 2;
    const unsigned pairs_per_maple = pairs / maples;
    const std::uint32_t rows = pairs * kRowsPerPair;

    soc::SocConfig cfg = soc::SocConfig::simulated(cores);
    cfg.name = "coh-grid-" + std::to_string(tiles);
    cfg.num_maples = maples;
    cfg.mesh_width = 0;
    cfg.mesh_height = 0;
    cfg.coherence.mode = mem::CoherenceMode::Msi;
    cfg.coherence.checker = true;
    cfg.llc_slices = slices;

    soc::Soc soc(cfg);
    MAPLE_ASSERT(soc.coherence(), "protocol must be live");
    os::Process &proc = soc.createProcess("coh-grid");

    app::SparseMatrix m = app::makeSkewedSparse(rows, kCols, kNnz, 7, 2.0);
    std::vector<float> x = app::makeDenseVector(kCols, 77);
    Sim s;
    s.m = app::SimCsr::upload(proc, m, true);
    s.x = app::SimArray<float>(proc, x.size(), "x");
    s.x.upload(x);
    s.y = app::SimArray<float>(proc, rows, "y");
    // Few slots, many writers: every slot line stays hot in the protocol.
    s.progress = app::SimArray<std::uint32_t>(proc, pairs / 4 + 1, "progress");

    std::vector<core::MapleApi> apis;
    for (unsigned i = 0; i < maples; ++i)
        apis.push_back(core::MapleApi::attach(proc, soc.maple(i)));
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        for (unsigned i = 0; i < maples; ++i) {
            co_await apis[i].init(c, pairs_per_maple, 32, 4);
            for (unsigned q = 0; q < pairs_per_maple; ++q) {
                bool ok = co_await apis[i].open(c, q);
                MAPLE_ASSERT(ok, "queue open failed");
            }
        }
    };
    soc.run({sim::spawn(setup(soc.core(0)))});

    std::vector<sim::Join> joins;
    for (unsigned p = 0; p < pairs; ++p) {
        unsigned dev = p / pairs_per_maple;
        unsigned q = p % pairs_per_maple;
        app::Chunk r = app::chunkOf(rows, p, pairs);
        joins.push_back(
            sim::spawn(access(soc.core(2 * p), s, apis[dev], q, r)));
        joins.push_back(sim::spawn(
            execute(soc.core(2 * p + 1), s, apis[dev], q, r, p % (pairs / 4 + 1))));
    }
    sim::Cycle cy = soc.run(std::move(joins));

    mem::CoherenceFabric &coh = *soc.coherence();
    std::uint64_t recalls = 0, upgrades = 0, entries = 0;
    for (unsigned sl = 0; sl < coh.numSlices(); ++sl) {
        recalls += coh.slice(sl).stats().counterValue("recalls");
        upgrades += coh.slice(sl).stats().counterValue("upgrades");
        entries += coh.slice(sl).entriesInUse();
    }
    mem::CoherenceChecker *ck = coh.checker();
    std::printf("%4u tiles (%3uc/%2um/%2ud)  %10llu cycles  "
                "inv %8llu  interv %7llu  upgrades %7llu  recalls %6llu\n",
                tiles, cores, maples, slices, (unsigned long long)cy,
                (unsigned long long)coh.totalInvalidations(),
                (unsigned long long)coh.totalInterventions(),
                (unsigned long long)upgrades, (unsigned long long)recalls);
    std::printf("      checker: %llu loads + %llu stores verified; "
                "%llu lines tracked at quiesce\n",
                (unsigned long long)(ck ? ck->loadsChecked() : 0),
                (unsigned long long)(ck ? ck->storesChecked() : 0),
                (unsigned long long)entries);
}

}  // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Sparse-directory MSI at scale: decoupled SPMV grids "
                "(checker on) ===\n\n");
    std::vector<unsigned> scales;
    for (int i = 1; i < argc; ++i)
        scales.push_back(static_cast<unsigned>(std::strtoul(argv[i], nullptr, 10)));
    if (scales.empty())
        scales = {64, 128, 256};
    for (unsigned t : scales)
        runScale(t);
    std::printf("\n(every protocol transition above passed the flat-memory "
                "reference checker)\n");
    return 0;
}
