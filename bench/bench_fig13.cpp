/**
 * @file
 * Figure 13: thread scaling of MAPLE decoupling. 2, 4 and 8 software
 * threads (1, 2 and 4 Access/Execute pairs) share a *single* MAPLE unit;
 * speedups are over doall parallelism at the same thread count.
 *
 * Paper headline: the decoupling speedup is maintained when scaling to 4
 * and 8 threads sharing one MAPLE.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main()
{
    auto workloads = app::allWorkloads();
    const unsigned thread_counts[] = {2, 4, 8};

    std::printf("\n=== Figure 13: MAPLE-decoupling speedup over doall, scaling "
                "threads on one MAPLE ===\n");
    std::printf("%-8s  %10s  %10s  %10s\n", "app", "2 threads", "4 threads",
                "8 threads");

    std::vector<std::vector<double>> per_threads(3);
    std::vector<std::vector<double>> rows(workloads.size());
    for (size_t ti = 0; ti < 3; ++ti) {
        unsigned threads = thread_counts[ti];
        app::RunConfig base;
        base.threads = threads;
        base.soc = soc::SocConfig::fpga();
        base.soc.num_cores = threads;
        base.soc.mesh_width = 0;   // auto-size the mesh for the tile count
        base.soc.mesh_height = 0;
        // 4 pairs x 32-entry queues fit the 1KB scratchpad exactly.
        base.queue_entries = 32;

        harness::Grid grid = harness::runGrid(
            workloads, {app::Technique::Doall, app::Technique::MapleDecouple},
            base);
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const std::string &n = workloads[wi]->name();
            double sp = double(grid.at(n, app::Technique::Doall).cycles) /
                        double(grid.at(n, app::Technique::MapleDecouple).cycles);
            rows[wi].push_back(sp);
            per_threads[ti].push_back(sp);
        }
    }
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::printf("%-8s  %9.2fx  %9.2fx  %9.2fx\n",
                    workloads[wi]->name().c_str(), rows[wi][0], rows[wi][1],
                    rows[wi][2]);
    }
    std::printf("%-8s  %9.2fx  %9.2fx  %9.2fx\n", "geomean",
                sim::geomean(per_threads[0]), sim::geomean(per_threads[1]),
                sim::geomean(per_threads[2]));
    std::printf("\n(paper: speedup maintained at 4 and 8 threads)\n");
    return 0;
}
