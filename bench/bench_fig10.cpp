/**
 * @file
 * Figure 10: load-instruction overhead of prefetching, normalized to the
 * no-prefetch baseline (single thread).
 *
 * Paper headline: software prefetching roughly doubles the number of load
 * instructions (extra index loads + prefetch instructions), while MAPLE
 * slightly *reduces* loads because the gathered IMA data is consumed two
 * 32-bit words at a time from the queue.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main(int argc, char **argv)
{
    std::string grid_json = harness::applyGridJsonFlag(argc, argv);
    auto workloads = app::allWorkloads();
    app::RunConfig base;
    base.threads = 1;
    base.soc = soc::SocConfig::fpga();

    std::vector<app::Technique> techs = {app::Technique::NoPrefetch,
                                         app::Technique::SwPrefetch,
                                         app::Technique::LimaPrefetch};
    harness::Grid grid = harness::runGrid(workloads, techs, base);
    harness::writeGridJson(grid_json, "fig10", grid);
    auto names = harness::workloadNames(workloads);

    std::printf("\n=== Figure 10: load instructions normalized to no-prefetch ===\n");
    std::printf("%-8s  %14s  %14s\n", "app", "sw-prefetch", "maple-lima");
    std::vector<double> sws, mps;
    for (auto &n : names) {
        double base_loads =
            double(grid.at(n, app::Technique::NoPrefetch).loads);
        double sw = double(grid.at(n, app::Technique::SwPrefetch).loads) / base_loads;
        double mp = double(grid.at(n, app::Technique::LimaPrefetch).loads) / base_loads;
        sws.push_back(sw);
        mps.push_back(mp);
        std::printf("%-8s  %13.2fx  %13.2fx\n", n.c_str(), sw, mp);
    }
    std::printf("%-8s  %13.2fx  %13.2fx\n", "geomean", sim::geomean(sws),
                sim::geomean(mps));
    std::printf("\n(paper: sw-prefetch ~2x, MAPLE slightly below 1x)\n");
    return 0;
}
