/**
 * @file
 * Section 5.4 area analysis: component-level breakdown of one MAPLE
 * instance and its ratio to an Ariane-class in-order core, plus scaling
 * with the principal RTL parameters.
 *
 * Paper headline: MAPLE with 8 queues sharing a 1KB scratchpad is ~1.1% of
 * the Ariane core it serves, and one instance supplies up to 8 cores.
 */
#include <cstdio>

#include "core/area_model.hpp"

using namespace maple::core;

static void
printBreakdown(const char *title, const AreaParams &p)
{
    AreaBreakdown b = mapleArea(p);
    std::printf("\n--- %s ---\n", title);
    for (const auto &item : b.items)
        std::printf("  %-24s %10.0f um^2\n", item.component.c_str(), item.um2);
    std::printf("  %-24s %10.0f um^2\n", "TOTAL", b.total_um2);
    std::printf("  %-24s %10.0f um^2\n", "Ariane core (reference)", b.ariane_um2);
    std::printf("  %-24s %9.2f%%\n", "MAPLE / Ariane", b.ratio() * 100.0);
    std::printf("  %-24s %9.3f%%\n", "amortized over 8 cores",
                b.ratio() * 100.0 / 8.0);
}

int
main()
{
    std::printf("=== Area analysis of the MAPLE RTL (12nm-class model) ===\n");
    printBreakdown("paper configuration: 8 queues, 1KB scratchpad, 16-entry TLB",
                   AreaParams{});
    printBreakdown("4KB scratchpad variant", AreaParams{4096, 8, 16, 16, 16});
    printBreakdown("32-entry TLB variant", AreaParams{1024, 8, 32, 16, 16});
    std::printf("\n(paper: 1.1%% of an Ariane core at the default configuration)\n");
    return 0;
}
