/**
 * @file
 * Figure 15: sensitivity of MAPLE's decoupling speedup to the core-to-MAPLE
 * round-trip latency. We sweep an extra per-direction MMIO latency so the
 * round trip covers ~15 to ~200 cycles while everything else (including the
 * doall baseline) is unchanged.
 *
 * Paper headline: speedups grow as the communication latency shrinks; the
 * technique remains profitable at realistic NoC distances.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main()
{
    auto workloads = app::allWorkloads();

    struct Point {
        sim::Cycle extra;
        const char *label;
    };
    const Point points[] = {
        {0, "rt~25"}, {13, "rt~50"}, {38, "rt~100"}, {88, "rt~200"}};

    // Doall baseline is independent of the MMIO latency; run it once.
    app::RunConfig base;
    base.threads = 2;
    base.soc = soc::SocConfig::fpga();
    harness::Grid base_grid =
        harness::runGrid(workloads, {app::Technique::Doall}, base);

    std::printf("\n=== Figure 15: MAPLE-decoupling speedup vs core-to-MAPLE "
                "round-trip latency ===\n");
    std::printf("%-8s", "app");
    for (const Point &p : points)
        std::printf("  %10s", p.label);
    std::printf("\n");

    std::vector<std::vector<double>> cols(std::size(points));
    std::vector<std::vector<double>> rows(workloads.size());
    for (size_t pi = 0; pi < std::size(points); ++pi) {
        app::RunConfig cfg = base;
        cfg.soc.core_proto.mmio_extra_latency = points[pi].extra;
        harness::Grid g = harness::runGrid(
            workloads, {app::Technique::MapleDecouple}, cfg);
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const std::string &n = workloads[wi]->name();
            double sp =
                double(base_grid.at(n, app::Technique::Doall).cycles) /
                double(g.at(n, app::Technique::MapleDecouple).cycles);
            rows[wi].push_back(sp);
            cols[pi].push_back(sp);
        }
    }
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::printf("%-8s", workloads[wi]->name().c_str());
        for (double sp : rows[wi])
            std::printf("  %9.2fx", sp);
        std::printf("\n");
    }
    std::printf("%-8s", "geomean");
    for (auto &c : cols)
        std::printf("  %9.2fx", sim::geomean(c));
    std::printf("\n\n(paper: lower NoC delay -> greater speedups)\n");
    return 0;
}
