/**
 * @file
 * Compiler-flow ablation (Section 3.3): the same gather kernel run as
 *  (a) single-core IR execution,
 *  (b) IR with the software-prefetch insertion pass,
 *  (c) automatically sliced Access/Execute through MAPLE,
 * demonstrating that the paper's "compiler targets the API" claim holds:
 * the transform is mechanical and the sliced code gets the decoupling
 * speedup without any hand-written data movement.
 */
#include <cstdio>

#include "kern/interp.hpp"
#include "kern/kernels.hpp"
#include "kern/slicer.hpp"
#include "soc/soc.hpp"

using namespace maple;
using namespace maple::kern;

namespace {

constexpr std::uint32_t kN = 4096;
constexpr unsigned kPad = 64;  // slack for the unguarded prefetch over-read

struct Data {
    sim::Addr a, b, c, res;
};

Data
setupData(os::Process &proc, GatherKernel &k)
{
    Data d;
    d.a = proc.alloc(kN * 4, "A");
    d.b = proc.alloc((kN + kPad) * 4, "B");
    d.c = proc.alloc(kN * 4, "C");
    d.res = proc.alloc(kN * 4, "res");
    for (std::uint32_t i = 0; i < kN; ++i) {
        proc.writeScalar<float>(d.a + 4 * i, float(i) * 0.5f);
        proc.writeScalar<std::uint32_t>(d.b + 4 * i, (i * 2654435761u) % kN);
        proc.writeScalar<float>(d.c + 4 * i, 1.5f);
    }
    patchConst(k.prog, k.pc_a, d.a);
    patchConst(k.prog, k.pc_b, d.b);
    patchConst(k.prog, k.pc_c, d.c);
    patchConst(k.prog, k.pc_res, d.res);
    patchConst(k.prog, k.pc_n, kN);
    return d;
}

}  // namespace

int
main()
{
    std::printf("=== Compiler flow on res[i] = A[B[i]] * C[i], n = %u ===\n\n", kN);

    // (a) original, one core
    sim::Cycle base;
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("a");
        GatherKernel k = makeGatherMultiply();
        setupData(proc, k);
        ExecEnv env{&soc.core(0), nullptr, 0};
        base = soc.run({sim::spawn(interpret(k.prog, env))});
        std::printf("%-44s %10llu cycles\n", "original (1 core)",
                    (unsigned long long)base);
    }

    // (b) software-prefetch pass, one core
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("b");
        GatherKernel k = makeGatherMultiply();
        setupData(proc, k);
        Program pf = insertSoftwarePrefetch(k.prog, 8);
        ExecEnv env{&soc.core(0), nullptr, 0};
        sim::Cycle cy = soc.run({sim::spawn(interpret(pf, env))});
        std::printf("%-44s %10llu cycles (%.2fx)\n",
                    "+ software-prefetch pass (1 core)",
                    (unsigned long long)cy, double(base) / double(cy));
    }

    // (c) automatic slicing through MAPLE, two cores
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("c");
        GatherKernel k = makeGatherMultiply();
        setupData(proc, k);
        SliceResult r = sliceProgram(k.prog);
        MAPLE_ASSERT(r.decoupled, "slicer refused the gather kernel");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        auto setup = [&](cpu::Core &c) -> sim::Task<void> {
            co_await api.init(c, 1, 32, 4);
            bool ok = co_await api.open(c, 0);
            MAPLE_ASSERT(ok, "open failed");
        };
        soc.run({sim::spawn(setup(soc.core(0)))});
        ExecEnv ae{&soc.core(0), &api, 0};
        ExecEnv ee{&soc.core(1), &api, 0};
        sim::Cycle cy = soc.run({sim::spawn(interpret(r.access, ae)),
                                 sim::spawn(interpret(r.execute, ee))});
        std::printf("%-44s %10llu cycles (%.2fx)\n",
                    "auto-sliced through MAPLE (2 cores)",
                    (unsigned long long)cy, double(base) / double(cy));
    }

    std::printf("\n(slicer fallbacks -- RMW and IMA-free kernels -> doall -- "
                "are covered by tests/test_kern.cpp)\n");
    return 0;
}
