/**
 * @file
 * Figure 9: single-thread prefetching speedups, normalized to no
 * prefetching. Compares MAPLE's LIMA operation (non-speculative prefetch
 * into hardware queues) against conventional software prefetching into L1.
 *
 * Paper headline: LIMA 1.73x geomean over no prefetching (up to 2.4x on
 * SPMV) and 2.35x over software prefetching.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main(int argc, char **argv)
{
    std::string grid_json = harness::applyGridJsonFlag(argc, argv);
    auto workloads = app::allWorkloads();
    app::RunConfig base;
    base.threads = 1;
    base.soc = soc::SocConfig::fpga();

    std::vector<app::Technique> techs = {app::Technique::NoPrefetch,
                                         app::Technique::SwPrefetch,
                                         app::Technique::LimaPrefetch};
    harness::Grid grid = harness::runGrid(workloads, techs, base);
    harness::writeGridJson(grid_json, "fig09", grid);
    auto names = harness::workloadNames(workloads);

    printSpeedupTable(
        "Figure 9: prefetching speedup over no-prefetch (1 thread, FPGA SoC)",
        grid, names,
        {app::Technique::SwPrefetch, app::Technique::LimaPrefetch},
        app::Technique::NoPrefetch);

    std::vector<double> sws, mps;
    for (auto &n : names) {
        double base_cy = double(grid.at(n, app::Technique::NoPrefetch).cycles);
        sws.push_back(base_cy / double(grid.at(n, app::Technique::SwPrefetch).cycles));
        mps.push_back(base_cy / double(grid.at(n, app::Technique::LimaPrefetch).cycles));
    }
    std::printf("\nLIMA over no prefetching:       %.2fx (paper: 1.73x)\n",
                sim::geomean(mps));
    std::printf("LIMA over software prefetching: %.2fx (paper: 2.35x)\n",
                sim::geomean(mps) / sim::geomean(sws));
    return 0;
}
