/**
 * @file
 * Figure 14: step-by-step breakdown of the core-to-MAPLE round-trip latency
 * in the OpenPiton-style SoC, plus a measured end-to-end consume latency
 * from a microbenchmark (data already waiting in the queue).
 *
 * Paper headline: the round trip is about 25 cycles plus a cycle per NoC
 * hop -- similar to an L2 access and an order of magnitude below DRAM.
 */
#include <cstdio>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"

using namespace maple;

int
main()
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("fig14");
    core::MapleApi api = core::MapleApi::attach(proc, soc.maple());

    cpu::Core &c = soc.core(0);
    auto bd = c.mmioRoundTrip(soc.mapleTile(0));
    unsigned hops = soc.mesh().hops(c.tile(), soc.mapleTile(0));
    sim::Cycle device = soc.maple().params().pipe_latency;

    std::printf("=== Figure 14: core-to-MAPLE round-trip latency breakdown ===\n");
    std::printf("  %-28s %3llu cycles\n", "L1 bypass (out)", (unsigned long long)bd.l1_out);
    std::printf("  %-28s %3llu cycles\n", "L1.5 stage (out)", (unsigned long long)bd.l15_out);
    std::printf("  %-28s %3llu cycles (%u hops)\n", "NoC request",
                (unsigned long long)bd.noc_out, hops);
    std::printf("  %-28s %3llu cycles\n", "MAPLE consume pipeline",
                (unsigned long long)device);
    std::printf("  %-28s %3llu cycles\n", "NoC response", (unsigned long long)bd.noc_back);
    std::printf("  %-28s %3llu cycles\n", "L1.5 stage (back)", (unsigned long long)bd.l15_back);
    std::printf("  %-28s %3llu cycles\n", "L1 bypass (back)", (unsigned long long)bd.l1_back);
    std::printf("  %-28s %3llu cycles\n", "TOTAL (static model)",
                (unsigned long long)(bd.total() + device));

    // Measured: consume a queue entry whose data is already present (the
    // batch fits the 32-entry queue so no produce ever parks).
    constexpr int kN = 24;
    sim::Cycle total = 0;
    auto bench = [&](cpu::Core &core) -> sim::Task<void> {
        co_await api.init(core, 1, 32, 8);
        bool ok = co_await api.open(core, 0);
        MAPLE_ASSERT(ok);
        for (int i = 0; i < kN; ++i)
            co_await api.produce(core, 0, i);
        co_await core.storeFence();
        sim::Cycle t0 = soc.eq().now();
        for (int i = 0; i < kN; ++i)
            (void)co_await api.consume(core, 0);
        total = soc.eq().now() - t0;
    };
    soc.run({sim::spawn(bench(c))}, 10'000'000);

    double per = double(total) / kN;
    std::printf("\nMeasured consume round trip: %.1f cycles/consume "
                "(incl. 1-cycle issue)\n", per);
    std::printf("Reference points: L2 access ~%u cycles, DRAM ~%u cycles\n",
                (unsigned)(soc.config().llc.hit_latency + 4),
                (unsigned)soc.config().dram.latency);
    std::printf("(paper: ~25 cycles + 1 per hop; similar to L2, 10x below DRAM)\n");
    return 0;
}
