/**
 * @file
 * Figure 12: comparison against prior hardware techniques on the simulated
 * system (Table 3): MAPLE decoupling vs DeSC decoupling vs DROPLET hardware
 * prefetching vs 2-thread doall. Each application's bar is the geomean of
 * its speedups across two datasets, as in the paper.
 *
 * Paper headlines: MAPLE 1.72x over DeSC and 1.82x over DROPLET geomean;
 * DeSC slightly ahead on the decoupling-friendly SPMV/SDHP (MAPLE >= 76%);
 * DeSC loses runahead on BFS; SPMM falls back to doall for all decoupling.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main()
{
    // Two datasets per application (different seeds / shapes).
    std::vector<std::vector<std::unique_ptr<app::Workload>>> datasets;
    datasets.push_back(app::allWorkloads());
    {
        std::vector<std::unique_ptr<app::Workload>> second;
        second.push_back(app::makeSdhp(1024, 8192, 16, 12));
        second.push_back(app::makeSpmm(384, 8, 13));
        second.push_back(app::makeSpmv(2048, 131072, 12, 14));
        second.push_back(app::makeBfs(12, 16, 15));
        datasets.push_back(std::move(second));
    }

    app::RunConfig base;
    base.threads = 2;
    base.soc = soc::SocConfig::simulated(2);

    std::vector<app::Technique> techs = {
        app::Technique::Doall, app::Technique::Droplet, app::Technique::Desc,
        app::Technique::MapleDecouple};

    std::vector<harness::Grid> grids;
    for (auto &ws : datasets)
        grids.push_back(harness::runGrid(ws, techs, base));

    auto names = harness::workloadNames(datasets[0]);
    std::vector<app::Technique> series = {app::Technique::Droplet,
                                          app::Technique::Desc,
                                          app::Technique::MapleDecouple};

    std::printf("\n=== Figure 12: speedup over 2-thread doall (simulated system, "
                "geomean of %zu datasets) ===\n",
                grids.size());
    std::printf("%-8s", "app");
    for (auto t : series)
        std::printf("  %14s", app::techniqueName(t));
    std::printf("\n");

    std::vector<std::vector<double>> cols(series.size());
    for (auto &n : names) {
        std::printf("%-8s", n.c_str());
        for (size_t i = 0; i < series.size(); ++i) {
            std::vector<double> per_dataset;
            for (auto &g : grids) {
                per_dataset.push_back(
                    double(g.at(n, app::Technique::Doall).cycles) /
                    double(g.at(n, series[i]).cycles));
            }
            double sp = sim::geomean(per_dataset);
            cols[i].push_back(sp);
            std::printf("  %13.2fx", sp);
        }
        std::printf("\n");
    }
    std::printf("%-8s", "geomean");
    std::vector<double> geo;
    for (auto &c : cols) {
        geo.push_back(sim::geomean(c));
        std::printf("  %13.2fx", geo.back());
    }
    std::printf("\n");

    double droplet = geo[0], desc = geo[1], maple_sp = geo[2];
    std::printf("\nMAPLE over DROPLET: %.2fx (paper: 1.82x)\n", maple_sp / droplet);
    std::printf("MAPLE over DeSC:    %.2fx (paper: 1.72x)\n", maple_sp / desc);
    return 0;
}
