/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's hot primitives:
 * event-queue throughput, cache access, TLB lookup, mesh transit, page-table
 * walks and dataset generation. These bound how large a figure sweep can be
 * and guard against performance regressions in the simulation kernel.
 */
#include <benchmark/benchmark.h>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mmu.hpp"
#include "noc/mesh.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "workloads/data.hpp"

using namespace maple;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(i, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_CoroutineRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        auto task = [](sim::EventQueue &q) -> sim::Task<void> {
            for (int i = 0; i < 256; ++i)
                co_await sim::delay(q, 1);
        };
        sim::Join j = sim::spawn(task(eq));
        eq.run();
        benchmark::DoNotOptimize(j.done());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CoroutineRoundTrip);

static void
BM_CacheHitAccess(benchmark::State &state)
{
    sim::EventQueue eq;
    mem::Dram dram(eq);
    mem::Cache cache(eq, mem::CacheParams{"bench", 64 * 1024, 8, 2, 16}, dram);
    // Warm one line.
    sim::spawn(cache.request(mem::MemRequest::make(
        eq, mem::RequesterClass::Core, 0, 0x1000, 8, mem::AccessKind::Read)));
    eq.run();
    for (auto _ : state) {
        sim::spawn(cache.request(mem::MemRequest::make(
            eq, mem::RequesterClass::Core, 0, 0x1000, 8,
            mem::AccessKind::Read)));
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitAccess);

static void
BM_CacheMissFill(benchmark::State &state)
{
    sim::EventQueue eq;
    mem::Dram dram(eq);
    mem::Cache cache(eq, mem::CacheParams{"bench", 8 * 1024, 4, 2, 16}, dram);
    sim::Addr a = 0;
    for (auto _ : state) {
        sim::spawn(cache.request(mem::MemRequest::make(
            eq, mem::RequesterClass::Core, 0, a, 8, mem::AccessKind::Read)));
        eq.run();
        a += mem::kLineSize;  // always a fresh line: guaranteed miss
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissFill);

static void
BM_TlbLookup(benchmark::State &state)
{
    mem::Tlb tlb(16);
    for (int i = 0; i < 16; ++i)
        tlb.insert(i * mem::kPageSize, mem::Pte::makeLeaf(i * mem::kPageSize, true));
    size_t i = 0;
    for (auto _ : state) {
        auto pte = tlb.lookup((i++ % 16) * mem::kPageSize);
        benchmark::DoNotOptimize(pte);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

static void
BM_MeshTransit(benchmark::State &state)
{
    sim::EventQueue eq;
    noc::Mesh mesh(eq, noc::MeshParams{8, 8, 1, 16});
    for (auto _ : state) {
        sim::spawn(mesh.transit(0, 63, 5));
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshTransit);

static void
BM_RmatGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        app::SparseMatrix g = app::makeRmat(
            static_cast<unsigned>(state.range(0)), 8, 1);
        benchmark::DoNotOptimize(g.nnz());
    }
}
BENCHMARK(BM_RmatGeneration)->Arg(10)->Arg(12);

BENCHMARK_MAIN();
