/**
 * @file
 * Section 5.3 queue-size sensitivity study: MAPLE-decoupling speedup over
 * doall as a function of the per-pair hardware queue depth.
 *
 * Paper headline: 32 entries (4 bytes each) are enough to sustain runahead;
 * 16 entries cost 5-10%; with 32-entry queues one MAPLE serves 8 cores from
 * just 1KB of scratchpad.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main()
{
    auto workloads = app::allWorkloads();
    const unsigned sizes[] = {8, 16, 32, 64, 128};

    app::RunConfig base;
    base.threads = 2;
    base.soc = soc::SocConfig::fpga();
    harness::Grid base_grid =
        harness::runGrid(workloads, {app::Technique::Doall}, base);

    std::printf("\n=== Queue-size sensitivity: MAPLE-decoupling speedup over "
                "doall ===\n");
    std::printf("%-8s", "app");
    for (unsigned s : sizes)
        std::printf("  %7u", s);
    std::printf("\n");

    std::vector<std::vector<double>> cols(std::size(sizes));
    std::vector<std::vector<double>> rows(workloads.size());
    for (size_t si = 0; si < std::size(sizes); ++si) {
        app::RunConfig cfg = base;
        cfg.queue_entries = sizes[si];
        harness::Grid g = harness::runGrid(
            workloads, {app::Technique::MapleDecouple}, cfg);
        for (size_t wi = 0; wi < workloads.size(); ++wi) {
            const std::string &n = workloads[wi]->name();
            double sp = double(base_grid.at(n, app::Technique::Doall).cycles) /
                        double(g.at(n, app::Technique::MapleDecouple).cycles);
            rows[wi].push_back(sp);
            cols[si].push_back(sp);
        }
    }
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        std::printf("%-8s", workloads[wi]->name().c_str());
        for (double sp : rows[wi])
            std::printf("  %6.2fx", sp);
        std::printf("\n");
    }
    std::printf("%-8s", "geomean");
    for (auto &c : cols)
        std::printf("  %6.2fx", sim::geomean(c));
    std::printf("\n");

    size_t i16 = 1, i32 = 2;
    double loss = 1.0 - sim::geomean(cols[i16]) / sim::geomean(cols[i32]);
    std::printf("\n16-entry vs 32-entry queues: %.1f%% performance loss "
                "(paper: 5-10%%)\n", loss * 100.0);
    return 0;
}
