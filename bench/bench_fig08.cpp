/**
 * @file
 * Figure 8: speedups from decoupling (1 Access + 1 Execute thread) with
 * MAPLE's API vs a shared-memory software implementation, normalized to
 * 2-thread doall parallelism, on the FPGA-prototype SoC configuration.
 *
 * Paper headline: MAPLE decoupling 1.51x over doall geomean and 2.27x over
 * software-only decoupling; software decoupling alone is a slowdown.
 */
#include "harness/figures.hpp"

using namespace maple;

int
main(int argc, char **argv)
{
    std::string grid_json = harness::applyGridJsonFlag(argc, argv);
    auto workloads = app::allWorkloads();
    app::RunConfig base;
    base.threads = 2;
    base.soc = soc::SocConfig::fpga();

    std::vector<app::Technique> techs = {app::Technique::Doall,
                                         app::Technique::SwDecouple,
                                         app::Technique::MapleDecouple};
    harness::Grid grid = harness::runGrid(workloads, techs, base);
    harness::writeGridJson(grid_json, "fig08", grid);
    auto names = harness::workloadNames(workloads);

    printSpeedupTable(
        "Figure 8: decoupling speedup over 2-thread doall (FPGA SoC config)",
        grid, names,
        {app::Technique::SwDecouple, app::Technique::MapleDecouple},
        app::Technique::Doall);

    double sw = 0, mp = 0;
    {
        std::vector<double> sws, mps;
        for (auto &n : names) {
            double base_cy = double(grid.at(n, app::Technique::Doall).cycles);
            sws.push_back(base_cy / double(grid.at(n, app::Technique::SwDecouple).cycles));
            mps.push_back(base_cy / double(grid.at(n, app::Technique::MapleDecouple).cycles));
        }
        sw = sim::geomean(sws);
        mp = sim::geomean(mps);
    }
    std::printf("\nMAPLE over software-only decoupling: %.2fx (paper: 2.27x)\n",
                mp / sw);
    std::printf("MAPLE over doall:                    %.2fx (paper: 1.51x)\n", mp);
    return 0;
}
