/**
 * @file
 * Tiled scaling study (Sections 3.6-3.8): the paper's chip integrates tens
 * of MAPLE instances, one per tile group; "more units can be employed for
 * larger thread counts in a tiled manner". We run 8 decoupled threads
 * (4 Access/Execute pairs) against 1, 2 and 4 MAPLE instances, assigning
 * each pair to the instance nearest its cores, and report the speedup over
 * 8-thread doall plus the per-device queue pressure.
 */
#include <cstdio>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"
#include "workloads/workload.hpp"

using namespace maple;

namespace {

constexpr std::uint32_t kRows = 4096;
constexpr std::uint32_t kCols = 65536;
constexpr std::uint32_t kNnz = 8;

struct Sim {
    app::SimCsr m;
    app::SimArray<float> x, y;
};

sim::Task<void>
doallWorker(cpu::Core &core, Sim &s, app::Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            float v = app::f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = app::f32FromBits(co_await core.load(s.x.addr(c), 4));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), app::bitsFromF32(acc), 4);
        jb = je;
    }
}

sim::Task<void>
access(cpu::Core &core, Sim &s, core::MapleApi &api, unsigned q, app::Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            co_await core.compute(1);
            co_await api.producePtr(core, q, s.x.addr(c));
        }
        jb = je;
    }
}

sim::Task<void>
execute(cpu::Core &core, Sim &s, core::MapleApi &api, unsigned q, app::Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = app::f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = app::f32FromBits(co_await api.consume(core, q));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), app::bitsFromF32(acc), 4);
        jb = je;
    }
}

Sim
upload(os::Process &proc, const app::SparseMatrix &m, const std::vector<float> &x)
{
    Sim s;
    s.m = app::SimCsr::upload(proc, m, true);
    s.x = app::SimArray<float>(proc, x.size(), "x");
    s.x.upload(x);
    s.y = app::SimArray<float>(proc, m.rows, "y");
    return s;
}

}  // namespace

int
main()
{
    std::printf("=== Tiled MAPLE scaling: 8 threads (4 pairs), SPMV ===\n\n");
    app::SparseMatrix m = app::makeSkewedSparse(kRows, kCols, kNnz, 7, 2.0);
    std::vector<float> x = app::makeDenseVector(kCols, 77);

    // Baseline: 8-thread doall (no MAPLE needed, one present anyway).
    sim::Cycle doall;
    {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.num_cores = 8;
        cfg.mesh_width = 0;
        cfg.mesh_height = 0;
        soc::Soc soc(cfg);
        os::Process &proc = soc.createProcess("doall");
        Sim s = upload(proc, m, x);
        std::vector<sim::Join> joins;
        for (unsigned t = 0; t < 8; ++t)
            joins.push_back(sim::spawn(
                doallWorker(soc.core(t), s, app::chunkOf(kRows, t, 8))));
        doall = soc.run(std::move(joins));
        std::printf("%-28s %12llu cycles\n", "doall (8 threads)",
                    (unsigned long long)doall);
    }

    for (unsigned maples : {1u, 2u, 4u}) {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.num_cores = 8;
        cfg.num_maples = maples;
        cfg.mesh_width = 0;
        cfg.mesh_height = 0;
        soc::Soc soc(cfg);
        os::Process &proc = soc.createProcess("tiled");
        Sim s = upload(proc, m, x);

        std::vector<core::MapleApi> apis;
        for (unsigned i = 0; i < maples; ++i)
            apis.push_back(core::MapleApi::attach(proc, soc.maple(i)));

        const unsigned pairs = 4;
        const unsigned pairs_per_maple = pairs / maples;
        auto setup = [&](cpu::Core &c) -> sim::Task<void> {
            for (unsigned i = 0; i < maples; ++i) {
                co_await apis[i].init(c, pairs_per_maple, 32, 4);
                for (unsigned q = 0; q < pairs_per_maple; ++q) {
                    bool ok = co_await apis[i].open(c, q);
                    MAPLE_ASSERT(ok, "open failed");
                }
            }
        };
        soc.run({sim::spawn(setup(soc.core(0)))});

        std::vector<sim::Join> joins;
        for (unsigned p = 0; p < pairs; ++p) {
            unsigned dev = p / pairs_per_maple;
            unsigned q = p % pairs_per_maple;
            app::Chunk rows = app::chunkOf(kRows, p, pairs);
            joins.push_back(sim::spawn(
                access(soc.core(2 * p), s, apis[dev], q, rows)));
            joins.push_back(sim::spawn(
                execute(soc.core(2 * p + 1), s, apis[dev], q, rows)));
        }
        sim::Cycle cy = soc.run(std::move(joins));

        std::uint64_t stall_sum = 0;
        for (unsigned i = 0; i < maples; ++i)
            stall_sum += soc.maple(i).counter(core::Counter::EmptyStallCycles);
        std::printf("%u MAPLE instance%s           %12llu cycles  (%.2fx over "
                    "doall, %llu consume-stall cycles)\n",
                    maples, maples > 1 ? "s" : " ", (unsigned long long)cy,
                    double(doall) / double(cy), (unsigned long long)stall_sum);
    }
    std::printf("\n(paper: MAPLE scales in a tiled manner; placement near the\n"
                " consuming cores minimizes the consume round trip)\n");
    return 0;
}
