/**
 * @file
 * LIMA example: offloading whole Loops of Indirect Memory Accesses with a
 * single API operation (Section 3.2 / Figure 4), on the SPMV kernel.
 *
 * Shows both LIMA modes:
 *  - non-speculative: fetched data lands in a MAPLE queue the core consumes
 *    from (two 32-bit words per load), keeping IMAs out of the L1 entirely;
 *  - speculative: PREFETCH pushes lines into the shared LLC instead.
 */
#include <cstdio>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"
#include "workloads/workload.hpp"

using namespace maple;

static void
runSpmv(app::Technique t, const char *label)
{
    auto spmv = app::makeSpmv(2048, 65536, 8, 5);
    app::RunConfig cfg;
    cfg.tech = t;
    app::RunResult r = spmv->run(cfg);
    std::printf("%-24s %12llu cycles   %9llu loads   avg load %6.1f cy   %s\n",
                label, (unsigned long long)r.cycles,
                (unsigned long long)r.loads, r.mean_load_latency,
                r.valid ? "OK" : "WRONG RESULT");
}

int
main()
{
    std::printf("SPMV (2048 x 65536, 8 nnz/row), single thread\n\n");
    runSpmv(app::Technique::NoPrefetch, "no prefetching");
    runSpmv(app::Technique::SwPrefetch, "software prefetching");
    runSpmv(app::Technique::LimaPrefetch, "MAPLE LIMA (queues)");

    // Direct API demonstration of a speculative LIMA into the LLC.
    std::printf("\nspeculative LIMA into the LLC (raw API):\n");
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("lima");
    constexpr unsigned kN = 512;
    sim::Addr a = proc.alloc(kN * 64, "A");  // one line per element
    sim::Addr b = proc.alloc(kN * 4, "B");
    for (unsigned i = 0; i < kN; ++i)
        proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 17) % kN * 16);

    core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        core::LimaRequest req;
        req.a_base = a;
        req.b_base = b;
        req.start = 0;
        req.end = kN;
        req.speculative = true;  // target the LLC, not a queue
        co_await api.lima(c, req);
    };
    soc.run({sim::spawn(driver(soc.core(0)))});
    std::printf("  one LIMA call -> %llu prefetches issued, "
                "%llu LLC prefetch fills\n",
                (unsigned long long)soc.maple().counter(
                    core::Counter::PrefetchesIssued),
                (unsigned long long)soc.llc().stats().counterValue(
                    "prefetch_fills"));
    return 0;
}
