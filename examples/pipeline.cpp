/**
 * @file
 * Pipelining example -- the extension the paper's conclusion envisions:
 * "to do pipelining, where each program stage is executed in a different
 * off-the-shelf core or accelerator".
 *
 * Three software stages run on three cores, connected by two MAPLE queues
 * of the same device; the middle stage uses PRODUCE_PTR so the gather it
 * performs overlaps with both neighbors:
 *
 *   stage0 (generate ids) --q0--> stage1 (gather+filter) --q1--> stage2 (reduce)
 */
#include <cstdio>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"

using namespace maple;

namespace {

constexpr std::uint32_t kN = 8192;

sim::Task<void>
stage0(cpu::Core &core, core::MapleApi &api, sim::Addr ids)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t id = co_await core.load(ids + 4 * i, 4);
        co_await core.compute(1);
        co_await api.produce(core, 0, id);
    }
}

sim::Task<void>
stage1(cpu::Core &core, core::MapleApi &api, sim::Addr table)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t id = co_await api.consume(core, 0);
        co_await core.compute(1);
        // Indirect gather offloaded to MAPLE: stage2 consumes the data.
        co_await api.producePtr(core, 1, table + 4 * (id % kN));
    }
}

sim::Task<void>
stage2(cpu::Core &core, core::MapleApi &api, sim::Addr out)
{
    std::uint64_t acc = 0;
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t v = co_await api.consume(core, 1);
        co_await core.compute(1);
        acc += v;
    }
    co_await core.store(out, acc, 8);
    co_await core.storeFence();
}

}  // namespace

int
main()
{
    std::printf("3-stage software pipeline through one MAPLE (2 queues)\n\n");

    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.num_cores = 3;
    cfg.mesh_width = 0;
    cfg.mesh_height = 0;
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("pipeline");

    sim::Addr ids = proc.alloc(kN * 4, "ids");
    sim::Addr table = proc.alloc(kN * 4, "table");
    sim::Addr out = proc.alloc(64, "out");
    std::uint64_t golden = 0;
    {
        std::vector<std::uint32_t> idv(kN), tv(kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            idv[i] = i * 2654435761u;
            tv[i] = i * 5 + 1;
        }
        proc.writeBytes(ids, idv.data(), kN * 4);
        proc.writeBytes(table, tv.data(), kN * 4);
        for (std::uint32_t i = 0; i < kN; ++i)
            golden += tv[idv[i] % kN];
    }

    core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 2, 32, 4);
        for (unsigned q = 0; q < 2; ++q) {
            bool ok = co_await api.open(c, q);
            MAPLE_ASSERT(ok, "open failed");
        }
    };
    soc.run({sim::spawn(setup(soc.core(0)))});

    sim::Cycle cycles = soc.run({sim::spawn(stage0(soc.core(0), api, ids)),
                                 sim::spawn(stage1(soc.core(1), api, table)),
                                 sim::spawn(stage2(soc.core(2), api, out))});

    std::uint64_t result = proc.readScalar<std::uint64_t>(out);
    std::printf("pipeline finished in %llu cycles (%.1f cycles/element)\n",
                (unsigned long long)cycles, double(cycles) / kN);
    std::printf("result: %llu (%s)\n", (unsigned long long)result,
                result == golden ? "PASS" : "FAIL");
    return result == golden ? 0 : 1;
}
