/**
 * @file
 * Automatic compilation example (Section 3.3 / Figure 5): a kernel written
 * once in the IR is sliced by the compiler pass into Access and Execute
 * programs that communicate through MAPLE -- no hand-written decoupling.
 *
 * Prints the original program, both slices, and the measured speedup of the
 * auto-decoupled version over single-core execution.
 */
#include <cstdio>

#include "kern/interp.hpp"
#include "kern/kernels.hpp"
#include "kern/slicer.hpp"
#include "soc/soc.hpp"

using namespace maple;
using namespace maple::kern;

int
main()
{
    constexpr std::uint32_t kN = 2048;
    GatherKernel kernel = makeGatherMultiply();

    std::printf("original kernel (res[i] = A[B[i]] * C[i]):\n%s\n",
                disassemble(kernel.prog).c_str());

    SliceResult sliced = sliceProgram(kernel.prog);
    if (!sliced.decoupled) {
        std::printf("slicer fell back: %s\n", sliced.reason.c_str());
        return 1;
    }
    std::printf("ACCESS slice:\n%s\n", disassemble(sliced.access).c_str());
    std::printf("EXECUTE slice:\n%s\n", disassemble(sliced.execute).c_str());

    auto make_data = [&](os::Process &proc, GatherKernel &k) {
        sim::Addr a = proc.alloc(kN * 4, "A");
        sim::Addr b = proc.alloc(kN * 4, "B");
        sim::Addr c = proc.alloc(kN * 4, "C");
        sim::Addr res = proc.alloc(kN * 4, "res");
        for (std::uint32_t i = 0; i < kN; ++i) {
            proc.writeScalar<float>(a + 4 * i, float(i));
            proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 2654435761u) % kN);
            proc.writeScalar<float>(c + 4 * i, 0.5f);
        }
        patchConst(k.prog, k.pc_a, a);
        patchConst(k.prog, k.pc_b, b);
        patchConst(k.prog, k.pc_c, c);
        patchConst(k.prog, k.pc_res, res);
        patchConst(k.prog, k.pc_n, kN);
    };

    // Single core.
    sim::Cycle single;
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("single");
        GatherKernel k = makeGatherMultiply();
        make_data(proc, k);
        ExecEnv env{&soc.core(0), nullptr, 0};
        single = soc.run({sim::spawn(interpret(k.prog, env))});
    }

    // Auto-decoupled pair.
    sim::Cycle decoupled;
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("pair");
        GatherKernel k = makeGatherMultiply();
        make_data(proc, k);
        SliceResult r = sliceProgram(k.prog);

        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        auto setup = [&](cpu::Core &c) -> sim::Task<void> {
            co_await api.init(c, r.queues_used, 32, 4);
            for (unsigned q = 0; q < r.queues_used; ++q) {
                bool ok = co_await api.open(c, q);
                MAPLE_ASSERT(ok, "open failed");
            }
        };
        soc.run({sim::spawn(setup(soc.core(0)))});

        ExecEnv access_env{&soc.core(0), &api, 0};
        ExecEnv exec_env{&soc.core(1), &api, 0};
        decoupled = soc.run({sim::spawn(interpret(r.access, access_env)),
                             sim::spawn(interpret(r.execute, exec_env))});
    }

    std::printf("single core:     %10llu cycles\n", (unsigned long long)single);
    std::printf("auto-decoupled:  %10llu cycles\n", (unsigned long long)decoupled);
    std::printf("speedup:         %10.2fx\n", double(single) / double(decoupled));
    return 0;
}
