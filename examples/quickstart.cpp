/**
 * @file
 * Quickstart: build an SoC with one MAPLE tile, decouple a simple
 * A[B[i]]-gather between two cores through the MAPLE API, and print the
 * speedup over running the same loop on one core.
 *
 * This walks through the whole public API surface:
 *   1. soc::Soc             -- assemble cores + MAPLE + memory on a mesh
 *   2. os::Process          -- create an address space, allocate arrays
 *   3. core::MapleApi       -- attach a MAPLE instance to the process
 *   4. INIT / OPEN          -- configure + bind a hardware queue
 *   5. PRODUCE_PTR / CONSUME-- the decoupled access/execute loop
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/maple_runtime.hpp"
#include "harness/figures.hpp"
#include "soc/soc.hpp"

using namespace maple;

namespace {

constexpr std::uint32_t kN = 4096;

/** Single-core baseline: the classic pointer-chasing gather loop. */
sim::Task<void>
baseline(cpu::Core &core, sim::Addr a, sim::Addr b, sim::Addr out)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(b + 4 * i, 4);
        std::uint64_t v = co_await core.load(a + 4 * idx, 4);  // the IMA
        co_await core.compute(1);
        co_await core.store(out + 4 * i, v + 1, 4);
    }
}

/** Access thread: streams B and hands the pointers to MAPLE. The *Reliable
 *  ops are free pass-throughs unless --fault-recovery armed the driver. */
sim::Task<void>
accessThread(cpu::Core &core, core::MapleApi &api, sim::Addr a, sim::Addr b)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(b + 4 * i, 4);
        co_await api.producePtrReliable(core, /*queue=*/0, a + 4 * idx);
    }
}

/** Execute thread: consumes already-fetched data from the queue. */
sim::Task<void>
executeThread(cpu::Core &core, core::MapleApi &api, sim::Addr out)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t v = co_await api.consumeReliable(core, /*queue=*/0);
        co_await core.compute(1);
        co_await core.store(out + 4 * i, v + 1, 4);
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    // --trace=out.json [--trace-csv=out.csv --trace-interval=N] captures a
    // Perfetto-loadable trace. Only the decoupled run below is traced: grab
    // the knobs here and keep the baseline SoC from seeing MAPLE_TRACE.
    harness::applyTraceFlags(argc, argv);
    // --fault-*=... / --watchdog* turn on deterministic fault injection and
    // tune the liveness watchdog (latched into MAPLE_FAULT_*/MAPLE_WATCHDOG*,
    // which both SoCs below pick up).
    harness::applyFaultFlags(argc, argv);
    // --llc-arb / --dram-arb pick the fabric arbitration policy and
    // --fault-only restricts injection to the named requester classes
    // (latched into MAPLE_LLC_ARB / MAPLE_DRAM_ARB / MAPLE_FAULT_ONLY).
    harness::applyFabricFlags(argc, argv);
    trace::TraceConfig tracecfg;
    tracecfg.mergeEnv();
    unsetenv("MAPLE_TRACE");
    unsetenv("MAPLE_TRACE_CSV");

    std::printf("MAPLE quickstart: decoupling a gather of %u elements\n\n", kN);

    // --- Run 1: one in-order core, no MAPLE -------------------------------
    sim::Cycle base_cycles;
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("quickstart");
        sim::Addr a = proc.alloc(kN * 4, "A");
        sim::Addr b = proc.alloc(kN * 4, "B");
        sim::Addr out = proc.alloc(kN * 4, "out");
        for (std::uint32_t i = 0; i < kN; ++i) {
            proc.writeScalar<std::uint32_t>(a + 4 * i, i * 3);
            proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 2654435761u) % kN);
        }
        base_cycles = soc.run({sim::spawn(baseline(soc.core(0), a, b, out))});
        std::printf("baseline (1 in-order core):      %10llu cycles\n",
                    (unsigned long long)base_cycles);
    }

    // --- Run 2: Access + Execute threads through MAPLE --------------------
    sim::Cycle maple_cycles;
    {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.trace = tracecfg;
        soc::Soc soc(cfg);
        os::Process &proc = soc.createProcess("quickstart");
        sim::Addr a = proc.alloc(kN * 4, "A");
        sim::Addr b = proc.alloc(kN * 4, "B");
        sim::Addr out = proc.alloc(kN * 4, "out");
        for (std::uint32_t i = 0; i < kN; ++i) {
            proc.writeScalar<std::uint32_t>(a + 4 * i, i * 3);
            proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 2654435761u) % kN);
        }

        // The OS maps the device page and installs the driver (one call).
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());

        // INIT: one queue of 32 4-byte entries; OPEN binds it.
        auto setup = [&](cpu::Core &c) -> sim::Task<void> {
            co_await api.init(c, 1, 32, 4);
            bool ok = co_await api.open(c, 0);
            MAPLE_ASSERT(ok, "queue open failed");
        };
        soc.run({sim::spawn(setup(soc.core(0)))});

        maple_cycles = soc.run(
            {sim::spawn(accessThread(soc.core(0), api, a, b)),
             sim::spawn(executeThread(soc.core(1), api, out))});
        std::printf("decoupled through MAPLE (2 cores): %8llu cycles\n",
                    (unsigned long long)maple_cycles);

        // Verify the result and show some device counters.
        bool ok = true;
        for (std::uint32_t i = 0; i < kN; ++i) {
            std::uint32_t idx = (i * 2654435761u) % kN;
            ok &= proc.readScalar<std::uint32_t>(out + 4 * i) == idx * 3 + 1;
        }
        std::printf("\nresult check: %s\n", ok ? "PASS" : "FAIL");
        std::printf("MAPLE counters: %llu pointer-produces, %llu consumes, "
                    "%llu TLB walks\n",
                    (unsigned long long)soc.maple().counter(core::Counter::ProducedPtrs),
                    (unsigned long long)soc.maple().counter(core::Counter::Consumed),
                    (unsigned long long)soc.maple().mmu().walks());
        if (os::MapleDriver *drv = api.driver()) {
            std::printf("recovery: %llu recoveries, %llu replayed ops, "
                        "%llu poisoned responses, %llu degraded queues\n",
                        (unsigned long long)drv->recoveries(),
                        (unsigned long long)drv->replayedOps(),
                        (unsigned long long)soc.maple().counter(
                            core::Counter::PoisonedResponses),
                        (unsigned long long)drv->degradedQueues());
        }
        // Only printed when --ecc / --scrub-interval armed the resilience
        // model, so --ecc=off stdout stays byte-identical.
        if (mem::ResilManager *r = soc.resil()) {
            std::printf("resil: %llu corrected, %llu uncorrectable, "
                        "%llu containments, %llu retired pages, "
                        "%llu scrub repairs\n",
                        (unsigned long long)r->correctedTotal(),
                        (unsigned long long)r->uncorrectableTotal(),
                        (unsigned long long)r->containments(),
                        (unsigned long long)r->retiredPages(),
                        (unsigned long long)r->scrubRepairs());
        }
    }

    std::printf("\nspeedup: %.2fx\n",
                double(base_cycles) / double(maple_cycles));
    return 0;
}
