/**
 * @file
 * Graph-analytics example: BFS over an R-MAT graph, comparing plain doall
 * parallelism against MAPLE decoupling and printing per-level statistics.
 * This is the motivating workload class of the paper (irregular dist[]
 * accesses over a power-law graph).
 */
#include <cstdio>

#include "workloads/workload.hpp"

using namespace maple;

int
main()
{
    std::printf("BFS on an R-MAT graph (2^14 vertices, ~16 edges/vertex)\n\n");
    auto bfs = app::makeBfs(/*scale=*/14, /*edge_factor=*/16, /*seed=*/99);

    app::RunConfig cfg;
    cfg.threads = 2;
    cfg.soc = soc::SocConfig::fpga();

    for (app::Technique t : {app::Technique::Doall, app::Technique::SwDecouple,
                             app::Technique::MapleDecouple}) {
        cfg.tech = t;
        app::RunResult r = bfs->run(cfg);
        std::printf("%-16s %12llu cycles   %8llu loads   avg load %6.1f cy   %s\n",
                    r.technique.c_str(), (unsigned long long)r.cycles,
                    (unsigned long long)r.loads, r.mean_load_latency,
                    r.valid ? "OK" : "WRONG RESULT");
    }

    // Scaling: same graph, 4 and 8 threads sharing the single MAPLE.
    std::printf("\nscaling MAPLE decoupling (threads sharing one MAPLE):\n");
    for (unsigned threads : {2u, 4u, 8u}) {
        app::RunConfig scfg = cfg;
        scfg.threads = threads;
        scfg.soc.num_cores = threads;
        scfg.soc.mesh_width = 0;
        scfg.soc.mesh_height = 0;

        scfg.tech = app::Technique::Doall;
        app::RunResult doall = bfs->run(scfg);
        scfg.tech = app::Technique::MapleDecouple;
        app::RunResult mpl = bfs->run(scfg);
        std::printf("  %u threads: doall %10llu cy, maple %10llu cy -> %.2fx\n",
                    threads, (unsigned long long)doall.cycles,
                    (unsigned long long)mpl.cycles,
                    double(doall.cycles) / double(mpl.cycles));
    }
    return 0;
}
